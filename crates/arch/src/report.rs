//! Formatted reproduction of Fig. 10 and the abstract's headline numbers.

use crate::area::{area_breakdown, area_saving, AreaBreakdown};
use crate::inventory::SolverKind;
use crate::params::ComponentParams;
use crate::power::{power_breakdown, power_saving, PowerBreakdown};
use crate::Result;

/// The complete Fig. 10 dataset at one problem size.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig10Report {
    /// Problem size (the paper uses 512).
    pub n: usize,
    /// Area breakdowns in the paper's order (original, one-stage,
    /// two-stage).
    pub area: Vec<AreaBreakdown>,
    /// Power breakdowns in the same order.
    pub power: Vec<PowerBreakdown>,
}

impl Fig10Report {
    /// Computes the report.
    ///
    /// # Errors
    ///
    /// Propagates model errors.
    pub fn compute(n: usize, params: &ComponentParams) -> Result<Self> {
        let mut area = Vec::new();
        let mut power = Vec::new();
        for kind in SolverKind::ALL {
            area.push(area_breakdown(kind, n, params)?);
            power.push(power_breakdown(kind, n, params)?);
        }
        Ok(Fig10Report { n, area, power })
    }

    /// One-stage area saving vs original (the abstract's 48.83%).
    pub fn one_stage_area_saving(&self) -> f64 {
        area_saving(&self.area[0], &self.area[1])
    }

    /// Two-stage area saving vs original (12.3% in §IV.B).
    pub fn two_stage_area_saving(&self) -> f64 {
        area_saving(&self.area[0], &self.area[2])
    }

    /// One-stage power saving vs original (40%).
    pub fn one_stage_power_saving(&self) -> f64 {
        power_saving(&self.power[0], &self.power[1])
    }

    /// Two-stage power saving vs original (37.4%).
    pub fn two_stage_power_saving(&self) -> f64 {
        power_saving(&self.power[0], &self.power[2])
    }

    /// Renders the two breakdown tables as text (the harness prints this
    /// as the Fig. 10 reproduction).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Fig. 10(a) — circuit area breakdown, n = {} (mm^2)\n",
            self.n
        ));
        out.push_str(&format!(
            "{:<22} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
            "solver", "OPA", "DAC", "ADC", "RRAM", "total"
        ));
        for a in &self.area {
            out.push_str(&format!(
                "{:<22} {:>10.5} {:>10.5} {:>10.5} {:>10.5} {:>10.5}\n",
                a.kind.label(),
                a.opa,
                a.dac,
                a.adc,
                a.rram,
                a.total()
            ));
        }
        out.push('\n');
        out.push_str(&format!(
            "Fig. 10(b) — power breakdown, n = {} (mW)\n",
            self.n
        ));
        out.push_str(&format!(
            "{:<22} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
            "solver", "OPA", "DAC", "ADC", "RRAM", "total"
        ));
        for p in &self.power {
            out.push_str(&format!(
                "{:<22} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3}\n",
                p.kind.label(),
                p.opa * 1e3,
                p.dac * 1e3,
                p.adc * 1e3,
                p.rram * 1e3,
                p.total() * 1e3
            ));
        }
        out.push('\n');
        out.push_str(&format!(
            "savings vs original: one-stage area {:.2}% (paper 48.3%), \
             two-stage area {:.2}% (paper 12.3%), one-stage power {:.2}% \
             (paper 40%), two-stage power {:.2}% (paper 37.4%)\n",
            100.0 * self.one_stage_area_saving(),
            100.0 * self.two_stage_area_saving(),
            100.0 * self.one_stage_power_saving(),
            100.0 * self.two_stage_power_saving(),
        ));
        out
    }
}

/// The abstract's headline sentence, computed from the model.
///
/// # Errors
///
/// Propagates model errors.
pub fn headline(params: &ComponentParams) -> Result<String> {
    let r = Fig10Report::compute(512, params)?;
    Ok(format!(
        "Compared to a single AMC circuit solving the same 512x512 problem, \
         one-stage BlockAMC improves area efficiency by {:.2}% (paper: 48.83%) \
         and power by {:.2}% (paper: 40%).",
        100.0 * r.one_stage_area_saving(),
        100.0 * r.one_stage_power_saving()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_reproduces_paper_percentages() {
        let r = Fig10Report::compute(512, &ComponentParams::calibrated_45nm()).unwrap();
        assert!((r.one_stage_area_saving() - 0.4883).abs() < 0.005);
        assert!((r.two_stage_area_saving() - 0.123).abs() < 0.005);
        assert!((r.one_stage_power_saving() - 0.40).abs() < 0.005);
        assert!((r.two_stage_power_saving() - 0.374).abs() < 0.005);
    }

    #[test]
    fn render_contains_all_rows() {
        let r = Fig10Report::compute(512, &ComponentParams::calibrated_45nm()).unwrap();
        let text = r.render();
        assert!(text.contains("Original AMC"));
        assert!(text.contains("One-stage BlockAMC"));
        assert!(text.contains("Two-stage BlockAMC"));
        assert!(text.contains("Fig. 10(a)"));
        assert!(text.contains("Fig. 10(b)"));
        assert!(text.contains("savings vs original"));
    }

    #[test]
    fn headline_mentions_both_savings() {
        let h = headline(&ComponentParams::calibrated_45nm()).unwrap();
        assert!(h.contains("48.83%"));
        assert!(h.contains('%'));
    }
}

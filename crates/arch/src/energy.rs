//! Energy-per-solve model: power × latency.

use crate::inventory::SolverKind;
use crate::latency::solve_latency;
use crate::params::ComponentParams;
use crate::power::power_breakdown;
use crate::Result;

/// Energy of one solve, in joules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyEstimate {
    /// The architecture.
    pub kind: SolverKind,
    /// Problem size.
    pub n: usize,
    /// Latency of the solve, s.
    pub latency_s: f64,
    /// Average power during the solve, W.
    pub power_w: f64,
}

impl EnergyEstimate {
    /// Energy = power × latency, J.
    pub fn energy_j(&self) -> f64 {
        self.latency_s * self.power_w
    }
}

/// Estimates the energy of one solve.
///
/// # Errors
///
/// Propagates parameter, inventory, and latency errors.
pub fn solve_energy(
    kind: SolverKind,
    n: usize,
    params: &ComponentParams,
    inv_settle_s: f64,
    mvm_settle_s: f64,
    conversion_s: f64,
) -> Result<EnergyEstimate> {
    let power = power_breakdown(kind, n, params)?;
    let latency = solve_latency(kind, inv_settle_s, mvm_settle_s, conversion_s)?;
    Ok(EnergyEstimate {
        kind,
        n,
        latency_s: latency,
        power_w: power.total(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_is_power_times_latency() {
        let p = ComponentParams::calibrated_45nm();
        let e = solve_energy(SolverKind::OriginalAmc, 512, &p, 1e-6, 1e-6, 0.0).unwrap();
        assert!((e.energy_j() - e.power_w * e.latency_s).abs() < 1e-20);
        assert!(e.energy_j() > 0.0);
    }

    #[test]
    fn one_stage_wins_when_small_arrays_settle_fast() {
        // Half-size arrays settle faster; with a 5x speedup per op the
        // one-stage solver also wins on energy despite 5 ops.
        let p = ComponentParams::calibrated_45nm();
        let orig = solve_energy(SolverKind::OriginalAmc, 512, &p, 5e-6, 5e-6, 0.0).unwrap();
        let one = solve_energy(SolverKind::OneStage, 512, &p, 1e-6, 0.5e-6, 0.0).unwrap();
        assert!(one.energy_j() < orig.energy_j());
    }

    #[test]
    fn equal_settle_times_favor_original_on_energy() {
        let p = ComponentParams::calibrated_45nm();
        let orig = solve_energy(SolverKind::OriginalAmc, 512, &p, 1e-6, 1e-6, 0.0).unwrap();
        let one = solve_energy(SolverKind::OneStage, 512, &p, 1e-6, 1e-6, 0.0).unwrap();
        // 5 ops at 0.6x power vs 1 op: original wins on energy per solve
        // (BlockAMC's claim is power/area, throughput via pipelining).
        assert!(orig.energy_j() < one.energy_j());
    }
}

//! Latency model: how many sequential analog operations each solver
//! needs, and what that costs in wall-clock time.
//!
//! The original AMC solver settles in a single INV operation. BlockAMC
//! trades that for five cascaded operations on smaller arrays; the
//! two-stage solver nests the cascade. Smaller arrays settle faster
//! (lower row conductance, better-conditioned normalized blocks), so the
//! latency gap is smaller than the op-count ratio suggests — the repro
//! harness measures actual settle times through `amc-circuit`; this
//! module provides the op-count bookkeeping.

use crate::inventory::SolverKind;
use crate::{ArchError, Result};

/// Sequential analog operation counts of one solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpCounts {
    /// INV operations on the critical path.
    pub inv: usize,
    /// MVM operations on the critical path.
    pub mvm: usize,
}

impl OpCounts {
    /// Total sequential analog operations.
    pub fn total(&self) -> usize {
        self.inv + self.mvm
    }
}

/// Sequential operation counts of each architecture.
///
/// * Original: 1 INV.
/// * One-stage: 3 INV + 2 MVM (the five steps share one op-amp column, so
///   they serialize).
/// * Two-stage: each first-stage INV expands into a one-stage solve
///   (5 ops) and each first-stage MVM into tiled partial MVMs whose four
///   tiles run on four macros (counted as 1 sequential step):
///   3×5 + 2×1 = 17 sequential operations.
pub fn op_counts(kind: SolverKind) -> OpCounts {
    match kind {
        SolverKind::OriginalAmc => OpCounts { inv: 1, mvm: 0 },
        SolverKind::OneStage => OpCounts { inv: 3, mvm: 2 },
        SolverKind::TwoStage => OpCounts { inv: 9, mvm: 8 },
    }
}

/// Sequential operation counts of a depth-`d` BlockAMC cascade.
///
/// Each INV of a depth-`d−1` cascade expands into a full five-step
/// sub-cascade while each MVM stays one (tiled) sequential step, so the
/// recurrences `inv(d) = 3·inv(d−1)` and `mvm(d) = 3·mvm(d−1) + 2`
/// close to `inv(d) = 3^d`, `mvm(d) = 3^d − 1`. Depth 0 is the original
/// single-array solver (1 INV), depth 1 matches
/// [`SolverKind::OneStage`], depth 2 matches [`SolverKind::TwoStage`].
pub fn cascade_op_counts(depth: usize) -> OpCounts {
    let pow3 = 3usize.saturating_pow(depth as u32);
    OpCounts {
        inv: pow3,
        mvm: pow3 - 1,
    }
}

/// [`solve_latency`] generalized to any cascade depth via
/// [`cascade_op_counts`].
///
/// # Errors
///
/// Returns [`ArchError::InvalidConfig`] for negative or non-finite
/// times.
pub fn cascade_latency(
    depth: usize,
    inv_settle_s: f64,
    mvm_settle_s: f64,
    conversion_s: f64,
) -> Result<f64> {
    for t in [inv_settle_s, mvm_settle_s, conversion_s] {
        if !t.is_finite() || t < 0.0 {
            return Err(ArchError::config(
                "settle/conversion times must be finite and non-negative",
            ));
        }
    }
    let c = cascade_op_counts(depth);
    Ok(c.inv as f64 * inv_settle_s + c.mvm as f64 * mvm_settle_s + 2.0 * conversion_s)
}

/// Latency of one solve given the per-operation settle times.
///
/// `inv_settle_s` / `mvm_settle_s` are the characteristic settle times of
/// one INV / MVM at this architecture's array size (obtain them from
/// `amc_circuit::timing`); `conversion_s` is added once per digital
/// boundary crossing (DAC at the start, ADC at the end).
///
/// # Errors
///
/// Returns [`ArchError::InvalidConfig`] for negative or non-finite times.
pub fn solve_latency(
    kind: SolverKind,
    inv_settle_s: f64,
    mvm_settle_s: f64,
    conversion_s: f64,
) -> Result<f64> {
    for t in [inv_settle_s, mvm_settle_s, conversion_s] {
        if !t.is_finite() || t < 0.0 {
            return Err(ArchError::config(
                "settle/conversion times must be finite and non-negative",
            ));
        }
    }
    let c = op_counts(kind);
    Ok(c.inv as f64 * inv_settle_s + c.mvm as f64 * mvm_settle_s + 2.0 * conversion_s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_counts_match_algorithm() {
        assert_eq!(op_counts(SolverKind::OriginalAmc).total(), 1);
        assert_eq!(op_counts(SolverKind::OneStage).total(), 5);
        assert_eq!(op_counts(SolverKind::OneStage).inv, 3);
        assert_eq!(op_counts(SolverKind::TwoStage).total(), 17);
    }

    #[test]
    fn cascade_counts_extend_the_fixed_architectures() {
        assert_eq!(cascade_op_counts(0), op_counts(SolverKind::OriginalAmc));
        assert_eq!(cascade_op_counts(1), op_counts(SolverKind::OneStage));
        assert_eq!(cascade_op_counts(2), op_counts(SolverKind::TwoStage));
        // Depth 3: 27 INV + 26 MVM = 53 sequential ops.
        assert_eq!(cascade_op_counts(3).total(), 53);
        // Recurrence: total(d) = 3·total(d−1) + 2.
        for d in 1..6 {
            assert_eq!(
                cascade_op_counts(d).total(),
                3 * cascade_op_counts(d - 1).total() + 2
            );
        }
    }

    #[test]
    fn cascade_latency_matches_fixed_latency_at_shared_depths() {
        for (d, kind) in [
            (0, SolverKind::OriginalAmc),
            (1, SolverKind::OneStage),
            (2, SolverKind::TwoStage),
        ] {
            let a = cascade_latency(d, 2e-6, 1e-6, 0.5e-6).unwrap();
            let b = solve_latency(kind, 2e-6, 1e-6, 0.5e-6).unwrap();
            assert!((a - b).abs() < 1e-18, "depth {d}");
        }
        assert!(cascade_latency(3, -1.0, 0.0, 0.0).is_err());
        assert!(cascade_latency(3, 0.0, f64::INFINITY, 0.0).is_err());
    }

    #[test]
    fn latency_combines_counts_and_times() {
        // One-stage: 3 INV × 2 µs + 2 MVM × 1 µs + 2 conversions × 0.5 µs.
        let t = solve_latency(SolverKind::OneStage, 2e-6, 1e-6, 0.5e-6).unwrap();
        assert!((t - 9e-6).abs() < 1e-18);
    }

    #[test]
    fn original_is_lowest_latency_at_equal_settle_times() {
        let orig = solve_latency(SolverKind::OriginalAmc, 1e-6, 1e-6, 0.0).unwrap();
        let one = solve_latency(SolverKind::OneStage, 1e-6, 1e-6, 0.0).unwrap();
        assert!(orig < one);
    }

    #[test]
    fn faster_small_arrays_can_beat_the_op_count() {
        // If half-size arrays settle 6x faster (smaller λ_min penalty),
        // one-stage latency beats the original.
        let orig = solve_latency(SolverKind::OriginalAmc, 6e-6, 6e-6, 0.0).unwrap();
        let one = solve_latency(SolverKind::OneStage, 1e-6, 0.5e-6, 0.0).unwrap();
        assert!(one < orig);
    }

    #[test]
    fn invalid_times_rejected() {
        assert!(solve_latency(SolverKind::OneStage, -1.0, 0.0, 0.0).is_err());
        assert!(solve_latency(SolverKind::OneStage, f64::NAN, 0.0, 0.0).is_err());
    }
}

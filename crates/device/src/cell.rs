//! Single RRAM cell model.

use crate::{DeviceError, Result};

/// Default minimum programmable conductance (high-resistance state), 1 µS.
///
/// Typical analog RRAM devices have an ON/OFF conductance window of about
/// two orders of magnitude (e.g. Park et al., IEEE EDL 2016); with the
/// paper's unit conductance G₀ = 100 µS this gives a 1 µS floor.
pub const DEFAULT_G_MIN: f64 = 1e-6;

/// Default maximum programmable conductance (low-resistance state), 150 µS.
///
/// Slightly above the paper's G₀ = 100 µS so that a matrix normalized to a
/// maximum element of 1 maps comfortably inside the window.
pub const DEFAULT_G_MAX: f64 = 1.5e-4;

/// A single analog RRAM cell.
///
/// The cell stores a conductance in siemens, bounded by the physically
/// programmable window `[g_min, g_max]`. A conductance of exactly `0.0` is
/// also representable: it models an *unselected* cell (the 1T1R selector
/// transistor keeps the device out of the circuit), which is how zero
/// matrix elements are realized in hardware.
///
/// # Example
///
/// ```
/// use amc_device::cell::RramCell;
///
/// # fn main() -> Result<(), amc_device::DeviceError> {
/// let mut cell = RramCell::with_default_window();
/// cell.program(5e-5)?;
/// assert_eq!(cell.read(), 5e-5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RramCell {
    conductance: f64,
    g_min: f64,
    g_max: f64,
}

impl RramCell {
    /// Creates an unprogrammed (zero-conductance / unselected) cell with the
    /// given programmable window.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidConfig`] unless `0 < g_min < g_max`.
    pub fn new(g_min: f64, g_max: f64) -> Result<Self> {
        if !(g_min > 0.0 && g_min < g_max) {
            return Err(DeviceError::config(format!(
                "cell window requires 0 < g_min < g_max, got [{g_min}, {g_max}]"
            )));
        }
        Ok(RramCell {
            conductance: 0.0,
            g_min,
            g_max,
        })
    }

    /// Creates a cell with the default window
    /// `[`[`DEFAULT_G_MIN`]`, `[`DEFAULT_G_MAX`]`]`.
    pub fn with_default_window() -> Self {
        RramCell {
            conductance: 0.0,
            g_min: DEFAULT_G_MIN,
            g_max: DEFAULT_G_MAX,
        }
    }

    /// The lower edge of the programmable window.
    pub fn g_min(&self) -> f64 {
        self.g_min
    }

    /// The upper edge of the programmable window.
    pub fn g_max(&self) -> f64 {
        self.g_max
    }

    /// Programs the cell to `target` siemens.
    ///
    /// A target of exactly `0.0` deselects the cell. Targets inside the
    /// window are stored exactly (write-and-verify is modeled separately by
    /// [`crate::variation::VariationModel`]).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::ConductanceOutOfRange`] if `target` is
    /// non-zero and outside `[g_min, g_max]`, or not finite.
    pub fn program(&mut self, target: f64) -> Result<()> {
        if target == 0.0 {
            self.conductance = 0.0;
            return Ok(());
        }
        if !target.is_finite() || target < self.g_min || target > self.g_max {
            return Err(DeviceError::ConductanceOutOfRange {
                requested: target,
                g_min: self.g_min,
                g_max: self.g_max,
            });
        }
        self.conductance = target;
        Ok(())
    }

    /// Programs the cell, clamping out-of-window targets to the nearest
    /// window edge instead of failing (zero still deselects).
    ///
    /// Returns the conductance actually stored. This is the behaviour of a
    /// real write-and-verify loop when asked for an unreachable value.
    pub fn program_clamped(&mut self, target: f64) -> f64 {
        let stored = if target == 0.0 || !target.is_finite() {
            0.0
        } else {
            target.clamp(self.g_min, self.g_max)
        };
        self.conductance = stored;
        stored
    }

    /// Reads the stored conductance in siemens.
    pub fn read(&self) -> f64 {
        self.conductance
    }

    /// Overwrites the stored conductance without window checks.
    ///
    /// Used by the fault injector to force stuck-at states; not part of the
    /// normal programming flow.
    pub(crate) fn force(&mut self, conductance: f64) {
        self.conductance = conductance;
    }

    /// Returns `true` if the cell is deselected (zero conductance).
    pub fn is_deselected(&self) -> bool {
        self.conductance == 0.0
    }
}

impl Default for RramCell {
    fn default() -> Self {
        Self::with_default_window()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_window() {
        assert!(RramCell::new(1e-6, 1e-4).is_ok());
        assert!(RramCell::new(0.0, 1e-4).is_err());
        assert!(RramCell::new(1e-4, 1e-6).is_err());
        assert!(RramCell::new(-1.0, 1.0).is_err());
    }

    #[test]
    fn program_and_read() {
        let mut c = RramCell::with_default_window();
        assert!(c.is_deselected());
        c.program(5e-5).unwrap();
        assert_eq!(c.read(), 5e-5);
        assert!(!c.is_deselected());
        c.program(0.0).unwrap();
        assert!(c.is_deselected());
    }

    #[test]
    fn program_rejects_out_of_window() {
        let mut c = RramCell::with_default_window();
        assert!(matches!(
            c.program(1.0),
            Err(DeviceError::ConductanceOutOfRange { .. })
        ));
        assert!(c.program(1e-9).is_err());
        assert!(c.program(f64::NAN).is_err());
        assert!(c.program(-5e-5).is_err());
    }

    #[test]
    fn program_clamped_saturates() {
        let mut c = RramCell::with_default_window();
        assert_eq!(c.program_clamped(1.0), DEFAULT_G_MAX);
        assert_eq!(c.program_clamped(1e-9), DEFAULT_G_MIN);
        assert_eq!(c.program_clamped(0.0), 0.0);
        assert_eq!(c.program_clamped(f64::NAN), 0.0);
        assert_eq!(c.program_clamped(5e-5), 5e-5);
    }

    #[test]
    fn default_matches_default_window() {
        let c = RramCell::default();
        assert_eq!(c.g_min(), DEFAULT_G_MIN);
        assert_eq!(c.g_max(), DEFAULT_G_MAX);
    }
}

//! Conductance retention drift.
//!
//! Nonvolatile does not mean immutable: programmed RRAM conductances
//! relax over time, typically following the empirical power law
//! `g(t) = g(t₀) · (t/t₀)^(−ν)` with a drift exponent ν of 0–0.1
//! (strongest in PCM, weaker but present in filamentary RRAM). BlockAMC
//! stores the pre-computed Schur complement in an array, so the time
//! between programming and solving matters — this module models that
//! decay and lets experiments ask how stale an array can get before the
//! solver drops out of spec.

use amc_linalg::Matrix;
use rand::Rng;

use crate::{DeviceError, Result};

/// Power-law drift model.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DriftModel {
    /// Mean drift exponent ν (0 = no drift).
    pub nu: f64,
    /// Device-to-device spread of the exponent (standard deviation of a
    /// Gaussian around `nu`, clamped at 0).
    pub nu_sigma: f64,
    /// Reference time t₀ after programming, seconds (the time at which
    /// the programmed value was verified).
    pub t0_s: f64,
}

impl DriftModel {
    /// No drift at all.
    pub fn none() -> Self {
        DriftModel {
            nu: 0.0,
            nu_sigma: 0.0,
            t0_s: 1.0,
        }
    }

    /// Representative filamentary-RRAM drift: ν = 0.005 ± 0.002 against a
    /// 1 s verify reference — sub-percent decay per decade of time.
    pub fn typical_rram() -> Self {
        DriftModel {
            nu: 0.005,
            nu_sigma: 0.002,
            t0_s: 1.0,
        }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidConfig`] for negative/non-finite
    /// values or a non-positive reference time.
    pub fn validate(&self) -> Result<()> {
        if self.nu.is_finite()
            && self.nu >= 0.0
            && self.nu_sigma.is_finite()
            && self.nu_sigma >= 0.0
            && self.t0_s.is_finite()
            && self.t0_s > 0.0
        {
            Ok(())
        } else {
            Err(DeviceError::config(format!(
                "invalid drift parameters: {self:?}"
            )))
        }
    }

    /// Deterministic decay factor at elapsed time `t_s` for the mean
    /// exponent (t ≤ t₀ returns 1: no drift before the reference).
    pub fn decay_factor(&self, t_s: f64) -> f64 {
        if t_s <= self.t0_s || self.nu == 0.0 {
            1.0
        } else {
            (t_s / self.t0_s).powf(-self.nu)
        }
    }

    /// Applies drift to a conductance matrix at elapsed time `t_s`,
    /// sampling a per-cell exponent when `nu_sigma > 0`. Deselected cells
    /// (zero conductance) are unaffected.
    ///
    /// # Errors
    ///
    /// * [`DeviceError::InvalidConfig`] for invalid parameters or a
    ///   non-finite/negative elapsed time.
    pub fn apply<R: Rng + ?Sized>(&self, g: &Matrix, t_s: f64, rng: &mut R) -> Result<Matrix> {
        self.validate()?;
        if !(t_s.is_finite() && t_s >= 0.0) {
            return Err(DeviceError::config("elapsed time must be non-negative"));
        }
        if t_s <= self.t0_s || (self.nu == 0.0 && self.nu_sigma == 0.0) {
            return Ok(g.clone());
        }
        let log_ratio = (t_s / self.t0_s).ln();
        Ok(g.map_indexed(|_, _, v| {
            if v == 0.0 {
                0.0
            } else {
                let nu_cell = if self.nu_sigma > 0.0 {
                    (self.nu + self.nu_sigma * normal(rng)).max(0.0)
                } else {
                    self.nu
                };
                v * (-nu_cell * log_ratio).exp()
            }
        }))
    }
}

impl Default for DriftModel {
    fn default() -> Self {
        Self::none()
    }
}

fn normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn no_drift_is_identity() {
        let g = Matrix::filled(3, 3, 1e-4);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let out = DriftModel::none().apply(&g, 1e6, &mut rng).unwrap();
        assert_eq!(out, g);
        assert_eq!(DriftModel::default(), DriftModel::none());
    }

    #[test]
    fn decay_follows_power_law() {
        let m = DriftModel {
            nu: 0.01,
            nu_sigma: 0.0,
            t0_s: 1.0,
        };
        // One decade: factor = 10^-0.01 ≈ 0.97724.
        assert!((m.decay_factor(10.0) - 10f64.powf(-0.01)).abs() < 1e-12);
        // Before the reference: no drift.
        assert_eq!(m.decay_factor(0.5), 1.0);
        // Monotone decreasing.
        assert!(m.decay_factor(1e6) < m.decay_factor(1e3));
    }

    #[test]
    fn deterministic_apply_matches_factor() {
        let m = DriftModel {
            nu: 0.02,
            nu_sigma: 0.0,
            t0_s: 1.0,
        };
        let g = Matrix::filled(2, 2, 1e-4);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let out = m.apply(&g, 100.0, &mut rng).unwrap();
        let expect = 1e-4 * m.decay_factor(100.0);
        for &v in out.as_slice() {
            assert!((v - expect).abs() < 1e-18);
        }
    }

    #[test]
    fn spread_gives_per_cell_variation_but_preserves_zeros() {
        let m = DriftModel::typical_rram();
        let mut g = Matrix::filled(4, 4, 1e-4);
        g[(0, 0)] = 0.0;
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let out = m.apply(&g, 1e5, &mut rng).unwrap();
        assert_eq!(out[(0, 0)], 0.0);
        // Cells drifted by different amounts.
        assert_ne!(out[(1, 1)], out[(2, 2)]);
        // All decayed (ν clamped non-negative).
        assert!(out
            .as_slice()
            .iter()
            .zip(g.as_slice())
            .all(|(&o, &i)| o <= i + 1e-18));
    }

    #[test]
    fn year_of_retention_loses_under_one_percent_for_typical_rram() {
        let m = DriftModel::typical_rram();
        let year = 3.15e7;
        let factor = m.decay_factor(year);
        assert!(factor > 0.90 && factor < 1.0, "factor {factor}");
    }

    #[test]
    fn validation() {
        let mut m = DriftModel::typical_rram();
        m.nu = -0.1;
        assert!(m.validate().is_err());
        let mut m = DriftModel::typical_rram();
        m.t0_s = 0.0;
        assert!(m.validate().is_err());
        let g = Matrix::filled(2, 2, 1e-4);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        assert!(DriftModel::typical_rram()
            .apply(&g, -1.0, &mut rng)
            .is_err());
    }
}

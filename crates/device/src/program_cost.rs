//! Programming (write-and-verify) time and energy model.
//!
//! BlockAMC's Schur complement `A4s` "should be calculated in advance,
//! and stored in a crosspoint RRAM array, which may cause a pre-processing
//! overhead" (paper §III.A). This module quantifies that overhead: how
//! many write pulses, how much time, and how much energy it takes to
//! program an array with a write-and-verify loop.
//!
//! The model: each cell needs a number of program/verify iterations that
//! grows with the demanded relative accuracy (empirically
//! `~log(1/accuracy)` pulses for tuned analog RRAM — Seo et al. 2011,
//! Park et al. 2016 report tens of pulses for percent-level targets).
//! Deselected cells cost nothing.

use amc_linalg::Matrix;

use crate::{DeviceError, Result};

/// Write-and-verify cost parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ProgramCostModel {
    /// Duration of one program pulse plus its verify read, seconds.
    pub pulse_s: f64,
    /// Energy of one program pulse, joules (verify read energy included).
    pub pulse_j: f64,
    /// Pulses needed per decade of relative accuracy: a cell tuned to
    /// relative accuracy `acc` needs `pulses_per_decade · log10(1/acc)`
    /// pulses (at least one).
    pub pulses_per_decade: f64,
}

impl ProgramCostModel {
    /// Representative analog-RRAM values: 100 ns program+verify cycle,
    /// 1 pJ per pulse, ~13 pulses per decade (≈ 26 pulses to reach the
    /// paper's 5% write accuracy — the "tens of pulses" regime of the
    /// write-verify literature).
    pub fn typical_rram() -> Self {
        ProgramCostModel {
            pulse_s: 1e-7,
            pulse_j: 1e-12,
            pulses_per_decade: 13.0,
        }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidConfig`] for non-positive values.
    pub fn validate(&self) -> Result<()> {
        if [self.pulse_s, self.pulse_j, self.pulses_per_decade]
            .iter()
            .all(|v| v.is_finite() && *v > 0.0)
        {
            Ok(())
        } else {
            Err(DeviceError::config(
                "program cost parameters must be positive and finite",
            ))
        }
    }

    /// Pulses needed to tune one cell to the given relative accuracy.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidConfig`] unless `0 < accuracy < 1`.
    pub fn pulses_per_cell(&self, accuracy: f64) -> Result<f64> {
        self.validate()?;
        if !(accuracy > 0.0 && accuracy < 1.0) {
            return Err(DeviceError::config(format!(
                "write accuracy must lie in (0, 1), got {accuracy}"
            )));
        }
        Ok((self.pulses_per_decade * (1.0 / accuracy).log10()).max(1.0))
    }
}

/// Cost of programming one array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgramCost {
    /// Cells that actually receive pulses (non-zero targets).
    pub programmed_cells: usize,
    /// Total write pulses issued.
    pub total_pulses: f64,
    /// Programming time assuming row-parallel writes (all cells of a row
    /// tuned concurrently, rows sequenced), seconds.
    pub time_row_parallel_s: f64,
    /// Programming time with strictly serial per-cell writes, seconds.
    pub time_serial_s: f64,
    /// Total programming energy, joules.
    pub energy_j: f64,
}

/// Estimates the cost of programming the conductance targets `g_targets`
/// (zeros = deselected, free) to the given relative accuracy.
///
/// # Errors
///
/// Propagates parameter/accuracy validation failures.
pub fn program_cost(
    g_targets: &Matrix,
    accuracy: f64,
    model: &ProgramCostModel,
) -> Result<ProgramCost> {
    let per_cell = model.pulses_per_cell(accuracy)?;
    let mut programmed = 0usize;
    let mut max_row_cells = 0usize;
    for i in 0..g_targets.rows() {
        let row_cells = g_targets.row(i).iter().filter(|&&v| v != 0.0).count();
        programmed += row_cells;
        max_row_cells = max_row_cells.max(row_cells);
    }
    let total_pulses = per_cell * programmed as f64;
    Ok(ProgramCost {
        programmed_cells: programmed,
        total_pulses,
        // Row-parallel: each row costs `per_cell` pulse slots regardless of
        // how many of its cells are active (they tune concurrently).
        time_row_parallel_s: g_targets.rows() as f64 * per_cell * model.pulse_s,
        time_serial_s: total_pulses * model.pulse_s,
        energy_j: total_pulses * model.pulse_j,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typical_model_validates() {
        let m = ProgramCostModel::typical_rram();
        assert!(m.validate().is_ok());
        // 5% accuracy ≈ 1.3 decades ≈ 17 pulses.
        let p = m.pulses_per_cell(0.05).unwrap();
        assert!(p > 10.0 && p < 30.0, "pulses {p}");
    }

    #[test]
    fn tighter_accuracy_needs_more_pulses() {
        let m = ProgramCostModel::typical_rram();
        let loose = m.pulses_per_cell(0.1).unwrap();
        let tight = m.pulses_per_cell(0.001).unwrap();
        assert!(tight > 2.5 * loose);
        assert!(m.pulses_per_cell(0.0).is_err());
        assert!(m.pulses_per_cell(1.0).is_err());
    }

    #[test]
    fn deselected_cells_are_free() {
        let m = ProgramCostModel::typical_rram();
        let mut g = Matrix::zeros(4, 4);
        g[(0, 0)] = 1e-4;
        g[(2, 3)] = 5e-5;
        let c = program_cost(&g, 0.05, &m).unwrap();
        assert_eq!(c.programmed_cells, 2);
        let full = program_cost(&Matrix::filled(4, 4, 1e-4), 0.05, &m).unwrap();
        assert!(full.energy_j > 7.0 * c.energy_j);
    }

    #[test]
    fn row_parallel_is_faster_than_serial() {
        let m = ProgramCostModel::typical_rram();
        let g = Matrix::filled(8, 8, 1e-4);
        let c = program_cost(&g, 0.05, &m).unwrap();
        assert!(c.time_row_parallel_s < c.time_serial_s);
        // Row-parallel time scales with rows, serial with cells.
        assert!((c.time_serial_s / c.time_row_parallel_s - 8.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_model_rejected() {
        let mut m = ProgramCostModel::typical_rram();
        m.pulse_s = 0.0;
        assert!(m.validate().is_err());
        assert!(program_cost(&Matrix::filled(2, 2, 1e-4), 0.05, &m).is_err());
    }

    #[test]
    fn blockamc_preprocessing_overhead_is_quantifiable() {
        // The pre-processing story: programming the Schur array costs the
        // same as any other block of equal occupancy — the overhead is the
        // digital Schur computation plus one extra array program.
        let m = ProgramCostModel::typical_rram();
        let a4s = Matrix::filled(16, 16, 5e-5);
        let c = program_cost(&a4s, 0.05, &m).unwrap();
        assert!(c.time_row_parallel_s < 1e-3, "sub-millisecond programming");
        assert!(c.energy_j < 1e-8);
    }
}

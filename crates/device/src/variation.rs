//! Conductance programming-variation models.
//!
//! The paper's accuracy experiments (Figs. 7–9) assume the programmed
//! conductance deviates from its target by Gaussian noise with a standard
//! deviation of `0.05·G₀` — "achievable by using the write&verify
//! algorithm". [`VariationModel::paper_default`] reproduces exactly that;
//! lognormal and proportional variants are provided for sensitivity
//! studies.

use rand::Rng;

use crate::{DeviceError, Result};

/// A stochastic model of how programmed conductances deviate from their
/// targets.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[non_exhaustive]
#[derive(Default)]
pub enum VariationModel {
    /// Ideal programming: the stored conductance equals the target.
    #[default]
    None,
    /// Additive Gaussian noise with standard deviation `sigma` siemens,
    /// independent of the target value. The paper uses
    /// `sigma = 0.05·G₀ = 5 µS`.
    Gaussian {
        /// Standard deviation in siemens.
        sigma: f64,
    },
    /// Additive Gaussian noise whose standard deviation is
    /// `sigma_rel × target` — device-to-device variability that scales with
    /// the stored conductance.
    Proportional {
        /// Relative standard deviation (e.g. `0.05` for 5%).
        sigma_rel: f64,
    },
    /// Multiplicative lognormal noise: the stored value is
    /// `target · exp(N(0, sigma_log))`. Common in the RRAM literature for
    /// cycle-to-cycle variation.
    Lognormal {
        /// Standard deviation of the underlying normal in log-space.
        sigma_log: f64,
    },
}

impl VariationModel {
    /// The paper's model: Gaussian with `σ = 0.05·G₀`.
    ///
    /// `g0` is the unit conductance (100 µS in the paper).
    pub fn paper_default(g0: f64) -> Self {
        VariationModel::Gaussian { sigma: 0.05 * g0 }
    }

    /// Gaussian variation expressed as a fraction of the unit conductance,
    /// matching the paper's "s = 0.05" figure annotations.
    pub fn gaussian_relative(sigma_over_g0: f64, g0: f64) -> Self {
        VariationModel::Gaussian {
            sigma: sigma_over_g0 * g0,
        }
    }

    /// Validates the model parameters.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidConfig`] if a deviation parameter is
    /// negative or not finite.
    pub fn validate(&self) -> Result<()> {
        let ok = match *self {
            VariationModel::None => true,
            VariationModel::Gaussian { sigma } => sigma.is_finite() && sigma >= 0.0,
            VariationModel::Proportional { sigma_rel } => sigma_rel.is_finite() && sigma_rel >= 0.0,
            VariationModel::Lognormal { sigma_log } => sigma_log.is_finite() && sigma_log >= 0.0,
        };
        if ok {
            Ok(())
        } else {
            Err(DeviceError::config(format!(
                "variation parameters must be finite and non-negative: {self:?}"
            )))
        }
    }

    /// Returns `true` for [`VariationModel::None`].
    pub fn is_none(&self) -> bool {
        matches!(self, VariationModel::None)
    }

    /// Samples the conductance actually stored when programming `target`
    /// siemens.
    ///
    /// Deselected cells (`target == 0.0`) are returned unchanged: an
    /// unselected 1T1R cell contributes no conductance regardless of device
    /// variability. Sampled values are clamped at zero from below — a
    /// resistor cannot have negative conductance.
    pub fn sample<R: Rng + ?Sized>(&self, target: f64, rng: &mut R) -> f64 {
        if target == 0.0 {
            return 0.0;
        }
        let value = match *self {
            VariationModel::None => target,
            VariationModel::Gaussian { sigma } => target + sigma * normal(rng),
            VariationModel::Proportional { sigma_rel } => target * (1.0 + sigma_rel * normal(rng)),
            VariationModel::Lognormal { sigma_log } => target * (sigma_log * normal(rng)).exp(),
        };
        value.max(0.0)
    }
}

/// Standard normal sample (Box–Muller), kept private to this crate.
fn normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn none_is_exact() {
        let mut r = rng(1);
        assert_eq!(VariationModel::None.sample(5e-5, &mut r), 5e-5);
        assert!(VariationModel::None.is_none());
    }

    #[test]
    fn paper_default_sigma() {
        let g0 = 1e-4;
        let m = VariationModel::paper_default(g0);
        assert_eq!(m, VariationModel::Gaussian { sigma: 5e-6 });
        assert_eq!(
            VariationModel::gaussian_relative(0.05, g0),
            VariationModel::Gaussian { sigma: 5e-6 }
        );
    }

    #[test]
    fn gaussian_statistics_match() {
        let mut r = rng(2);
        let sigma = 5e-6;
        let target = 1e-4;
        let m = VariationModel::Gaussian { sigma };
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| m.sample(target, &mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let std = (samples.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64).sqrt();
        assert!((mean - target).abs() < 3.0 * sigma / (n as f64).sqrt() * 4.0);
        assert!((std - sigma).abs() / sigma < 0.05, "std {std}");
    }

    #[test]
    fn zero_target_never_varies() {
        let mut r = rng(3);
        let m = VariationModel::Gaussian { sigma: 1.0 };
        for _ in 0..100 {
            assert_eq!(m.sample(0.0, &mut r), 0.0);
        }
    }

    #[test]
    fn samples_are_clamped_non_negative() {
        let mut r = rng(4);
        // Huge sigma relative to target forces negative draws.
        let m = VariationModel::Gaussian { sigma: 1.0 };
        for _ in 0..1000 {
            assert!(m.sample(1e-6, &mut r) >= 0.0);
        }
    }

    #[test]
    fn lognormal_is_multiplicative_and_positive() {
        let mut r = rng(5);
        let m = VariationModel::Lognormal { sigma_log: 0.2 };
        for _ in 0..1000 {
            let v = m.sample(1e-4, &mut r);
            assert!(v > 0.0);
        }
    }

    #[test]
    fn proportional_scales_with_target() {
        let mut r1 = rng(6);
        let mut r2 = rng(6);
        let m = VariationModel::Proportional { sigma_rel: 0.1 };
        let small = m.sample(1e-6, &mut r1) - 1e-6;
        let large = m.sample(1e-4, &mut r2) - 1e-4;
        // Same RNG stream => same normal draw => deviation scales by 100x.
        assert!((large / small - 100.0).abs() < 1e-6);
    }

    #[test]
    fn validate_rejects_bad_parameters() {
        assert!(VariationModel::Gaussian { sigma: -1.0 }.validate().is_err());
        assert!(VariationModel::Proportional {
            sigma_rel: f64::NAN
        }
        .validate()
        .is_err());
        assert!(VariationModel::Lognormal { sigma_log: 0.1 }
            .validate()
            .is_ok());
        assert!(VariationModel::None.validate().is_ok());
        assert!(VariationModel::default().is_none());
    }
}

use std::fmt;

/// Error type for all fallible operations in `amc-device`.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DeviceError {
    /// A conductance target lies outside the programmable device range.
    ConductanceOutOfRange {
        /// The requested conductance in siemens.
        requested: f64,
        /// Minimum programmable conductance.
        g_min: f64,
        /// Maximum programmable conductance.
        g_max: f64,
    },
    /// Invalid configuration (non-positive G₀, zero levels, probability
    /// outside `[0, 1]`, …).
    InvalidConfig {
        /// Explanation of what was wrong.
        message: String,
    },
    /// An underlying linear-algebra operation failed.
    Linalg(amc_linalg::LinalgError),
}

impl DeviceError {
    /// Shorthand constructor for [`DeviceError::InvalidConfig`].
    pub fn config(message: impl Into<String>) -> Self {
        DeviceError::InvalidConfig {
            message: message.into(),
        }
    }
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::ConductanceOutOfRange {
                requested,
                g_min,
                g_max,
            } => write!(
                f,
                "conductance {requested:.3e} S outside programmable range \
                 [{g_min:.3e}, {g_max:.3e}] S"
            ),
            DeviceError::InvalidConfig { message } => {
                write!(f, "invalid device configuration: {message}")
            }
            DeviceError::Linalg(e) => write!(f, "linear algebra error: {e}"),
        }
    }
}

impl std::error::Error for DeviceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DeviceError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<amc_linalg::LinalgError> for DeviceError {
    fn from(e: amc_linalg::LinalgError) -> Self {
        DeviceError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DeviceError::ConductanceOutOfRange {
            requested: 1e-3,
            g_min: 1e-6,
            g_max: 1e-4,
        };
        assert!(e.to_string().contains("1.000e-3"));

        let e = DeviceError::config("levels must be >= 2");
        assert!(e.to_string().contains("levels"));
    }

    #[test]
    fn wraps_linalg_errors() {
        let le = amc_linalg::LinalgError::Singular { pivot: 0 };
        let de = DeviceError::from(le.clone());
        assert!(de.to_string().contains("singular"));
        use std::error::Error;
        assert!(de.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DeviceError>();
    }
}

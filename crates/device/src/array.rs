//! Crossbar arrays and programmed signed matrices.

use amc_linalg::Matrix;
use rand::Rng;

use crate::cell::RramCell;
use crate::mapping::{MappingConfig, MatrixMapping};
use crate::variation::VariationModel;
use crate::{DeviceError, Result};

/// A crosspoint RRAM array holding one non-negative conductance matrix.
///
/// Rows correspond to word lines (WLs) and columns to bit lines (BLs),
/// matching Fig. 1 of the paper.
///
/// # Example
///
/// ```
/// use amc_device::array::CrossbarArray;
/// use amc_linalg::Matrix;
///
/// # fn main() -> Result<(), amc_device::DeviceError> {
/// let g = Matrix::from_rows(&[&[1e-4, 0.0], &[5e-5, 2e-5]])?;
/// let array = CrossbarArray::from_conductances(&g)?;
/// assert_eq!(array.conductances(), g);
/// assert_eq!(array.programmed_cell_count(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CrossbarArray {
    rows: usize,
    cols: usize,
    cells: Vec<RramCell>,
}

impl CrossbarArray {
    /// Creates an array of deselected (zero-conductance) cells with the
    /// default device window.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidConfig`] if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Result<Self> {
        if rows == 0 || cols == 0 {
            return Err(DeviceError::config("array dimensions must be positive"));
        }
        Ok(CrossbarArray {
            rows,
            cols,
            cells: vec![RramCell::with_default_window(); rows * cols],
        })
    }

    /// Creates an array directly from a matrix of conductance values in
    /// siemens (bypassing window checks — values are stored verbatim, which
    /// is what the circuit simulator needs after variation sampling may
    /// have pushed values slightly outside the nominal window).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidConfig`] if `g` is empty or contains
    /// negative or non-finite values.
    pub fn from_conductances(g: &Matrix) -> Result<Self> {
        if g.rows() == 0 || g.cols() == 0 {
            return Err(DeviceError::config("array dimensions must be positive"));
        }
        if g.as_slice().iter().any(|&v| !v.is_finite() || v < 0.0) {
            return Err(DeviceError::config(
                "conductances must be finite and non-negative",
            ));
        }
        let mut array = CrossbarArray::new(g.rows(), g.cols())?;
        for i in 0..g.rows() {
            for j in 0..g.cols() {
                array.cells[i * g.cols() + j].force(g[(i, j)]);
            }
        }
        Ok(array)
    }

    /// Number of word lines (rows).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of bit lines (columns).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Reads the whole array back as a conductance matrix in siemens.
    pub fn conductances(&self) -> Matrix {
        Matrix::from_fn(self.rows, self.cols, |i, j| {
            self.cells[i * self.cols + j].read()
        })
    }

    /// Reads a single cell.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn cell(&self, row: usize, col: usize) -> &RramCell {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        &self.cells[row * self.cols + col]
    }

    /// Number of cells holding a non-zero conductance.
    pub fn programmed_cell_count(&self) -> usize {
        self.cells.iter().filter(|c| !c.is_deselected()).count()
    }

    /// Sum of all conductances — proportional to the array's static power
    /// draw under unit bias, used by the architecture model.
    pub fn total_conductance(&self) -> f64 {
        self.cells.iter().map(RramCell::read).sum()
    }

    /// Largest sum of conductances along any word line. The MVM circuit's
    /// settling time is linear in this quantity (Sun & Huang, TCAS-II
    /// 2021), so the timing model consumes it.
    pub fn max_row_conductance_sum(&self) -> f64 {
        (0..self.rows)
            .map(|i| {
                (0..self.cols)
                    .map(|j| self.cells[i * self.cols + j].read())
                    .sum::<f64>()
            })
            .fold(0.0_f64, f64::max)
    }
}

/// A signed matrix programmed onto a pair of crossbar arrays
/// (`A = A⁺ − A⁻`), together with the scale metadata needed to interpret
/// circuit outputs mathematically.
///
/// This is the handle the circuit crate operates on: it exposes both the
/// physical conductances (for circuit-level simulation) and the effective
/// mathematical matrix they represent (for the fast analytic path).
#[derive(Debug, Clone, PartialEq)]
pub struct ProgrammedMatrix {
    pos: CrossbarArray,
    neg: CrossbarArray,
    scale: f64,
    g0: f64,
}

impl ProgrammedMatrix {
    /// Maps matrix `a` under `cfg` and programs both arrays, sampling
    /// variation and faults from `rng`.
    ///
    /// # Errors
    ///
    /// * [`DeviceError::InvalidConfig`] for invalid configuration, a zero
    ///   matrix, or invalid variation parameters.
    pub fn program<R: Rng + ?Sized>(
        a: &Matrix,
        cfg: &MappingConfig,
        variation: &VariationModel,
        rng: &mut R,
    ) -> Result<Self> {
        variation.validate()?;
        let mapping = MatrixMapping::new(a, cfg)?;
        let (gp, gn) = mapping.sample_programmed(cfg, variation, rng);
        Ok(ProgrammedMatrix {
            pos: CrossbarArray::from_conductances(&gp)?,
            neg: CrossbarArray::from_conductances(&gn)?,
            scale: mapping.scale(),
            g0: mapping.g0(),
        })
    }

    /// The positive-part array.
    pub fn pos(&self) -> &CrossbarArray {
        &self.pos
    }

    /// The negative-part array.
    pub fn neg(&self) -> &CrossbarArray {
        &self.neg
    }

    /// The normalization factor applied before mapping.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The unit conductance G₀ in siemens.
    pub fn g0(&self) -> f64 {
        self.g0
    }

    /// Shape `(rows, cols)` of the represented matrix.
    pub fn shape(&self) -> (usize, usize) {
        (self.pos.rows(), self.pos.cols())
    }

    /// The *normalized* signed conductance matrix `(G⁺ − G⁻) / g0` the
    /// circuit computes with; its ideal value is `a / scale`.
    pub fn normalized_matrix(&self) -> Matrix {
        let diff = self
            .pos
            .conductances()
            .sub_matrix(&self.neg.conductances())
            .expect("pos/neg arrays share a shape by construction");
        diff.scaled(1.0 / self.g0)
    }

    /// The effective mathematical matrix represented by the programmed
    /// conductances, `(G⁺ − G⁻) · scale / g0`. With no variation, faults,
    /// quantization, or sub-window clamping this equals the original
    /// matrix.
    pub fn effective_matrix(&self) -> Matrix {
        self.normalized_matrix().scaled(self.scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultModel;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn sample_matrix() -> Matrix {
        Matrix::from_rows(&[&[2.0, -1.0], &[0.5, 1.5]]).unwrap()
    }

    #[test]
    fn array_construction_validation() {
        assert!(CrossbarArray::new(0, 4).is_err());
        assert!(CrossbarArray::new(4, 0).is_err());
        let a = CrossbarArray::new(3, 5).unwrap();
        assert_eq!(a.rows(), 3);
        assert_eq!(a.cols(), 5);
        assert_eq!(a.programmed_cell_count(), 0);
    }

    #[test]
    fn from_conductances_rejects_negative_and_nan() {
        let bad = Matrix::from_rows(&[&[1e-4, -1e-5]]).unwrap();
        assert!(CrossbarArray::from_conductances(&bad).is_err());
        let nan = Matrix::from_rows(&[&[f64::NAN]]).unwrap();
        assert!(CrossbarArray::from_conductances(&nan).is_err());
    }

    #[test]
    fn conductance_roundtrip_and_stats() {
        let g = Matrix::from_rows(&[&[1e-4, 0.0], &[5e-5, 2e-5]]).unwrap();
        let a = CrossbarArray::from_conductances(&g).unwrap();
        assert_eq!(a.conductances(), g);
        assert_eq!(a.programmed_cell_count(), 3);
        assert!((a.total_conductance() - 1.7e-4).abs() < 1e-18);
        assert!((a.max_row_conductance_sum() - 1e-4).abs() < 1e-18);
        assert_eq!(a.cell(0, 0).read(), 1e-4);
    }

    #[test]
    fn ideal_programming_roundtrips_matrix() {
        let a = sample_matrix();
        let cfg = MappingConfig::paper_default();
        let p = ProgrammedMatrix::program(&a, &cfg, &VariationModel::None, &mut rng(1)).unwrap();
        assert!(p.effective_matrix().approx_eq(&a, 1e-12));
        assert_eq!(p.shape(), (2, 2));
        assert_eq!(p.scale(), 2.0);
        assert_eq!(p.g0(), cfg.g0);
    }

    #[test]
    fn normalized_matrix_has_unit_max() {
        let a = sample_matrix();
        let cfg = MappingConfig::paper_default();
        let p = ProgrammedMatrix::program(&a, &cfg, &VariationModel::None, &mut rng(2)).unwrap();
        assert!((p.normalized_matrix().max_abs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn variation_perturbs_effective_matrix() {
        let a = sample_matrix();
        let cfg = MappingConfig::paper_default();
        let var = VariationModel::paper_default(cfg.g0);
        let p = ProgrammedMatrix::program(&a, &cfg, &var, &mut rng(3)).unwrap();
        let eff = p.effective_matrix();
        assert!(!eff.approx_eq(&a, 1e-9), "variation should perturb");
        // …but the perturbation should be small: σ/g0 = 5%, scale = 2.
        let diff = eff.sub_matrix(&a).unwrap();
        assert!(diff.max_abs() < 0.05 * 2.0 * 6.0, "6-sigma bound");
    }

    #[test]
    fn stuck_off_faults_zero_cells() {
        let a = sample_matrix();
        let mut cfg = MappingConfig::paper_default();
        cfg.faults = FaultModel::new(0.0, 1.0, cfg.g_max, 0.0).unwrap();
        let p = ProgrammedMatrix::program(&a, &cfg, &VariationModel::None, &mut rng(4)).unwrap();
        assert!(p.effective_matrix().is_zero());
    }

    #[test]
    fn programming_is_reproducible() {
        let a = sample_matrix();
        let cfg = MappingConfig::paper_default();
        let var = VariationModel::paper_default(cfg.g0);
        let p1 = ProgrammedMatrix::program(&a, &cfg, &var, &mut rng(5)).unwrap();
        let p2 = ProgrammedMatrix::program(&a, &cfg, &var, &mut rng(5)).unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn invalid_variation_is_rejected() {
        let a = sample_matrix();
        let cfg = MappingConfig::paper_default();
        let bad = VariationModel::Gaussian { sigma: -1.0 };
        assert!(ProgrammedMatrix::program(&a, &cfg, &bad, &mut rng(6)).is_err());
    }
}

//! Matrix → conductance mapping.
//!
//! Every AMC operation begins by mapping a mathematical matrix onto device
//! conductances (paper §IV: "the matrix is normalized to make the largest
//! element equal to 1. The resulting matrices are mapped to RRAM arrays,
//! according to a unit conductance of G₀ = 100 µS").
//!
//! Because conductances are physically non-negative, a signed matrix is
//! split as `A = A⁺ − A⁻` and realized with *two* arrays (paper §II); the
//! circuit subtracts their contributions (analog inverters / differential
//! op-amp inputs).

use amc_linalg::Matrix;

use crate::faults::FaultModel;
use crate::quant::Quantizer;
use crate::variation::VariationModel;
use crate::{cell, DeviceError, Result};

/// Static configuration of the matrix → conductance mapping.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MappingConfig {
    /// Unit conductance G₀ in siemens: a normalized matrix element of 1.0
    /// maps to this conductance. The paper uses 100 µS.
    pub g0: f64,
    /// Lower edge of the programmable device window in siemens.
    pub g_min: f64,
    /// Upper edge of the programmable device window in siemens.
    pub g_max: f64,
    /// Optional finite-level quantization of conductance targets.
    pub quantizer: Option<Quantizer>,
    /// Stuck-at fault model applied at programming time.
    pub faults: FaultModel,
}

impl MappingConfig {
    /// The paper's configuration: `G₀ = 100 µS`, default device window,
    /// fully analog (no quantization), no faults.
    pub fn paper_default() -> Self {
        MappingConfig {
            g0: 1e-4,
            g_min: cell::DEFAULT_G_MIN,
            g_max: cell::DEFAULT_G_MAX,
            quantizer: None,
            faults: FaultModel::none(),
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidConfig`] if `g0` is non-positive or
    /// outside the device window, or the window itself is invalid.
    pub fn validate(&self) -> Result<()> {
        if !(self.g_min > 0.0 && self.g_min < self.g_max) {
            return Err(DeviceError::config(format!(
                "device window requires 0 < g_min < g_max, got [{}, {}]",
                self.g_min, self.g_max
            )));
        }
        if !(self.g0 > 0.0 && self.g0.is_finite()) {
            return Err(DeviceError::config("g0 must be positive and finite"));
        }
        if self.g0 > self.g_max {
            return Err(DeviceError::config(format!(
                "g0 = {} exceeds g_max = {}; normalized elements of 1.0 would \
                 not be programmable",
                self.g0, self.g_max
            )));
        }
        Ok(())
    }
}

impl Default for MappingConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// The deterministic part of a matrix mapping: normalization scale and the
/// positive/negative conductance *targets* (before variation/faults).
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixMapping {
    /// Normalization factor: the mapped matrix is `a / scale`, chosen so the
    /// largest absolute element becomes 1.0.
    scale: f64,
    /// Conductance targets for the positive-part array, in siemens.
    g_pos: Matrix,
    /// Conductance targets for the negative-part array, in siemens.
    g_neg: Matrix,
    /// The unit conductance used.
    g0: f64,
}

impl MatrixMapping {
    /// Maps matrix `a` to conductance targets under `cfg`.
    ///
    /// Normalization makes the largest absolute element equal 1, so its
    /// target conductance is exactly `g0`. Elements whose targets fall
    /// below the device window are handled like a write-and-verify loop
    /// would: targets below `g_min / 2` deselect the cell (stored as 0),
    /// others clamp to `g_min`.
    ///
    /// # Errors
    ///
    /// * [`DeviceError::InvalidConfig`] if `cfg` is invalid or `a` is the
    ///   zero matrix (the normalization scale would vanish).
    pub fn new(a: &Matrix, cfg: &MappingConfig) -> Result<Self> {
        cfg.validate()?;
        let scale = a.max_abs();
        if scale == 0.0 {
            return Err(DeviceError::config(
                "cannot map the zero matrix: normalization scale is zero",
            ));
        }
        let normalized = a.scaled(1.0 / scale);
        let (pos, neg) = normalized.split_signs();
        let to_target = |v: f64| -> f64 {
            if v == 0.0 {
                return 0.0;
            }
            let mut g = v * cfg.g0;
            if let Some(q) = cfg.quantizer {
                g = q.quantize(g);
            }
            if g < cfg.g_min {
                if g < cfg.g_min / 2.0 {
                    0.0
                } else {
                    cfg.g_min
                }
            } else {
                g.min(cfg.g_max)
            }
        };
        Ok(MatrixMapping {
            scale,
            g_pos: pos.map(to_target),
            g_neg: neg.map(to_target),
            g0: cfg.g0,
        })
    }

    /// The normalization factor (`max |a_ij|` of the original matrix).
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Unit conductance in siemens.
    pub fn g0(&self) -> f64 {
        self.g0
    }

    /// Conductance targets of the positive-part array.
    pub fn g_pos(&self) -> &Matrix {
        &self.g_pos
    }

    /// Conductance targets of the negative-part array.
    pub fn g_neg(&self) -> &Matrix {
        &self.g_neg
    }

    /// Reconstructs the mathematical matrix these targets represent
    /// (inverse of the ideal mapping): `(G⁺ − G⁻) · scale / g0`.
    pub fn reconstruct(&self) -> Matrix {
        let diff = self
            .g_pos
            .sub_matrix(&self.g_neg)
            .expect("pos/neg targets share a shape by construction");
        diff.scaled(self.scale / self.g0)
    }

    /// Samples programmed (noisy / faulty) conductances for both arrays.
    ///
    /// Order of effects per cell: stuck-at faults first (a stuck cell
    /// ignores programming entirely), then programming variation on the
    /// quantized target. Results are clamped into `[0, ∞)` by the
    /// variation model.
    pub fn sample_programmed<R: rand::Rng + ?Sized>(
        &self,
        cfg: &MappingConfig,
        variation: &VariationModel,
        rng: &mut R,
    ) -> (Matrix, Matrix) {
        let mut program = |targets: &Matrix| -> Matrix {
            targets.map_indexed(|_, _, target| {
                use crate::faults::FaultState;
                match cfg.faults.draw(rng) {
                    FaultState::StuckOn => cfg.faults.g_on,
                    FaultState::StuckOff => cfg.faults.g_off,
                    FaultState::Healthy => variation.sample(target, rng),
                }
            })
        };
        let pos = program(&self.g_pos);
        let neg = program(&self.g_neg);
        (pos, neg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn sample_matrix() -> Matrix {
        Matrix::from_rows(&[&[2.0, -1.0], &[0.5, 0.0]]).unwrap()
    }

    #[test]
    fn paper_default_validates() {
        assert!(MappingConfig::paper_default().validate().is_ok());
        assert_eq!(MappingConfig::default(), MappingConfig::paper_default());
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut cfg = MappingConfig::paper_default();
        cfg.g0 = 0.0;
        assert!(cfg.validate().is_err());
        let mut cfg = MappingConfig::paper_default();
        cfg.g0 = 1.0; // above g_max
        assert!(cfg.validate().is_err());
        let mut cfg = MappingConfig::paper_default();
        cfg.g_min = cfg.g_max;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn normalization_puts_largest_element_at_g0() {
        let cfg = MappingConfig::paper_default();
        let m = MatrixMapping::new(&sample_matrix(), &cfg).unwrap();
        assert_eq!(m.scale(), 2.0);
        // The largest element (2.0) maps to exactly g0 in the positive array.
        assert_eq!(m.g_pos()[(0, 0)], cfg.g0);
        // The negative element maps into the negative array.
        assert_eq!(m.g_neg()[(0, 1)], 0.5 * cfg.g0);
        assert_eq!(m.g_pos()[(0, 1)], 0.0);
        // Zero elements deselect both arrays.
        assert_eq!(m.g_pos()[(1, 1)], 0.0);
        assert_eq!(m.g_neg()[(1, 1)], 0.0);
    }

    #[test]
    fn reconstruct_inverts_ideal_mapping() {
        let cfg = MappingConfig::paper_default();
        let a = sample_matrix();
        let m = MatrixMapping::new(&a, &cfg).unwrap();
        assert!(m.reconstruct().approx_eq(&a, 1e-15));
    }

    #[test]
    fn zero_matrix_is_rejected() {
        let cfg = MappingConfig::paper_default();
        assert!(MatrixMapping::new(&Matrix::zeros(2, 2), &cfg).is_err());
    }

    #[test]
    fn sub_window_targets_clamp_or_deselect() {
        let cfg = MappingConfig::paper_default();
        // g_min/g0 = 0.01. Element ratios: 1.0, 0.004 (-> deselect, since
        // 0.004*g0 = 4e-7 < g_min/2 = 5e-7), 0.008 (-> clamp to g_min since
        // 0.008*g0 = 8e-7 >= g_min/2).
        let a = Matrix::from_rows(&[&[1.0, 0.004], &[0.008, 1.0]]).unwrap();
        let m = MatrixMapping::new(&a, &cfg).unwrap();
        assert_eq!(m.g_pos()[(0, 1)], 0.0, "tiny element should deselect");
        assert_eq!(m.g_pos()[(1, 0)], cfg.g_min, "small element should clamp");
    }

    #[test]
    fn quantizer_snaps_targets() {
        let mut cfg = MappingConfig::paper_default();
        cfg.quantizer = Some(Quantizer::new(cfg.g_min, cfg.g0, 3).unwrap());
        // 3 states between 1e-6 and 1e-4: {1e-6, 5.05e-5, 1e-4}.
        let a = Matrix::from_rows(&[&[1.0, 0.49], &[0.9, 0.02]]).unwrap();
        let m = MatrixMapping::new(&a, &cfg).unwrap();
        assert_eq!(m.g_pos()[(0, 0)], 1e-4);
        assert!((m.g_pos()[(0, 1)] - 5.05e-5).abs() < 1e-9);
        assert_eq!(m.g_pos()[(1, 0)], 1e-4, "0.9 snaps up to the top state");
    }

    #[test]
    fn sample_without_variation_equals_targets() {
        let cfg = MappingConfig::paper_default();
        let m = MatrixMapping::new(&sample_matrix(), &cfg).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let (p, n) = m.sample_programmed(&cfg, &VariationModel::None, &mut rng);
        assert_eq!(&p, m.g_pos());
        assert_eq!(&n, m.g_neg());
    }

    #[test]
    fn sample_with_variation_perturbs_but_stays_nonnegative() {
        let cfg = MappingConfig::paper_default();
        let m = MatrixMapping::new(&sample_matrix(), &cfg).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let var = VariationModel::paper_default(cfg.g0);
        let (p, _) = m.sample_programmed(&cfg, &var, &mut rng);
        assert_ne!(&p, m.g_pos());
        assert!(p.as_slice().iter().all(|&v| v >= 0.0));
        // Deselected cells stay deselected under variation.
        assert_eq!(p[(1, 1)], 0.0);
    }

    #[test]
    fn stuck_on_fault_overrides_target() {
        let mut cfg = MappingConfig::paper_default();
        cfg.faults = FaultModel::new(1.0, 0.0, cfg.g_max, 0.0).unwrap();
        let m = MatrixMapping::new(&sample_matrix(), &cfg).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let (p, n) = m.sample_programmed(&cfg, &VariationModel::None, &mut rng);
        assert!(p.as_slice().iter().all(|&v| v == cfg.g_max));
        assert!(n.as_slice().iter().all(|&v| v == cfg.g_max));
    }

    #[test]
    fn sampling_is_reproducible_with_same_seed() {
        let cfg = MappingConfig::paper_default();
        let m = MatrixMapping::new(&sample_matrix(), &cfg).unwrap();
        let var = VariationModel::paper_default(cfg.g0);
        let a = m.sample_programmed(&cfg, &var, &mut ChaCha8Rng::seed_from_u64(9));
        let b = m.sample_programmed(&cfg, &var, &mut ChaCha8Rng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}

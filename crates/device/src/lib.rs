//! RRAM device and crossbar-array models for the BlockAMC reproduction.
//!
//! The BlockAMC paper (DATE 2024) assumes analog RRAM devices: nonvolatile,
//! continuously tunable conductances arranged in a crosspoint array. In its
//! simulations "each RRAM device is equivalent to a resistor with a specific
//! conductance given by matrix mapping", perturbed by Gaussian programming
//! variation with σ = 0.05·G₀. This crate implements exactly that device
//! abstraction, plus the practical machinery around it:
//!
//! * [`cell::RramCell`] — a single memory cell with a bounded conductance
//!   range and program/read operations.
//! * [`variation::VariationModel`] — programming-noise models (none /
//!   Gaussian / lognormal), applied at write-and-verify time.
//! * [`quant::Quantizer`] — finite conductance-level quantization, for
//!   studying devices with a discrete number of programmable states.
//! * [`faults::FaultModel`] — stuck-at-ON / stuck-at-OFF cells (the paper's
//!   motivation mentions cells that "get stuck … losing the tunability").
//! * [`mapping`] — the matrix → conductance mapping used by every AMC
//!   circuit: normalization so the largest element maps to the full
//!   conductance scale, the split `A = A⁺ − A⁻` onto two arrays (device
//!   conductances are non-negative), and the unit conductance `G₀`
//!   (100 µS in the paper).
//! * [`array::CrossbarArray`] and [`array::ProgrammedMatrix`] — programmed
//!   crosspoint arrays, the unit the circuit crate builds MVM/INV
//!   topologies around.
//!
//! # Example
//!
//! ```
//! use amc_device::mapping::MappingConfig;
//! use amc_device::array::ProgrammedMatrix;
//! use amc_device::variation::VariationModel;
//! use amc_linalg::Matrix;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), amc_device::DeviceError> {
//! let a = Matrix::from_rows(&[&[1.0, -0.5], &[0.25, 2.0]])?;
//! let cfg = MappingConfig::paper_default();
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
//! let programmed = ProgrammedMatrix::program(&a, &cfg, &VariationModel::None, &mut rng)?;
//! // With no variation, reading back recovers the matrix exactly.
//! let read = programmed.effective_matrix();
//! assert!(read.approx_eq(&a, 1e-12));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod array;
pub mod cell;
pub mod drift;
mod error;
pub mod faults;
pub mod mapping;
pub mod program_cost;
pub mod quant;
pub mod variation;

pub use error::DeviceError;

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, DeviceError>;

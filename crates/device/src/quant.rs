//! Finite conductance-level quantization.
//!
//! Analog RRAM devices offer a limited number of reliably distinguishable
//! conductance states (e.g. 64 levels in Park et al., IEEE EDL 2016). The
//! paper assumes fully analog devices; [`Quantizer`] lets experiments relax
//! that assumption and study how many levels BlockAMC actually needs — one
//! of the ablations indexed in DESIGN.md.

use crate::{DeviceError, Result};

/// Uniform quantizer over the conductance window `[g_min, g_max]`.
///
/// Targets are snapped to the nearest of `levels` equally spaced states;
/// a zero target stays zero (deselected cell).
///
/// # Example
///
/// ```
/// use amc_device::quant::Quantizer;
///
/// # fn main() -> Result<(), amc_device::DeviceError> {
/// let q = Quantizer::new(0.0, 1.0, 5)?; // states at 0.0, 0.25, 0.5, 0.75, 1.0
/// assert_eq!(q.quantize(0.6), 0.5);
/// assert_eq!(q.quantize(0.9), 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Quantizer {
    g_min: f64,
    g_max: f64,
    levels: u32,
}

impl Quantizer {
    /// Creates a quantizer with `levels` states spanning `[g_min, g_max]`.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidConfig`] if `levels < 2` or the window
    /// is empty/reversed/not finite.
    pub fn new(g_min: f64, g_max: f64, levels: u32) -> Result<Self> {
        if levels < 2 {
            return Err(DeviceError::config("quantizer requires at least 2 levels"));
        }
        if !(g_min.is_finite() && g_max.is_finite() && g_min < g_max) {
            return Err(DeviceError::config(format!(
                "quantizer window must satisfy g_min < g_max, got [{g_min}, {g_max}]"
            )));
        }
        Ok(Quantizer {
            g_min,
            g_max,
            levels,
        })
    }

    /// Number of quantization states.
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// Spacing between adjacent states.
    pub fn step(&self) -> f64 {
        (self.g_max - self.g_min) / (self.levels - 1) as f64
    }

    /// Snaps `target` to the nearest state. Values outside the window clamp
    /// to the window edges; an exact zero stays zero (deselected cell).
    pub fn quantize(&self, target: f64) -> f64 {
        if target == 0.0 {
            return 0.0;
        }
        let clamped = target.clamp(self.g_min, self.g_max);
        let step = self.step();
        let idx = ((clamped - self.g_min) / step).round();
        self.g_min + idx * step
    }

    /// Worst-case quantization error (half a step).
    pub fn max_error(&self) -> f64 {
        self.step() / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validation() {
        assert!(Quantizer::new(0.0, 1.0, 2).is_ok());
        assert!(Quantizer::new(0.0, 1.0, 1).is_err());
        assert!(Quantizer::new(1.0, 0.0, 4).is_err());
        assert!(Quantizer::new(0.0, f64::INFINITY, 4).is_err());
    }

    #[test]
    fn quantizes_to_nearest_state() {
        let q = Quantizer::new(0.0, 1.0, 5).unwrap();
        assert_eq!(q.step(), 0.25);
        assert_eq!(q.quantize(0.1), 0.0);
        assert_eq!(q.quantize(0.13), 0.25);
        assert_eq!(q.quantize(0.5), 0.5);
        assert_eq!(q.quantize(0.99), 1.0);
    }

    #[test]
    fn clamps_out_of_window() {
        let q = Quantizer::new(0.2, 1.0, 5).unwrap();
        assert_eq!(q.quantize(0.01), 0.2);
        assert_eq!(q.quantize(5.0), 1.0);
    }

    #[test]
    fn zero_stays_deselected() {
        let q = Quantizer::new(0.2, 1.0, 5).unwrap();
        assert_eq!(q.quantize(0.0), 0.0);
    }

    #[test]
    fn error_bound_holds() {
        let q = Quantizer::new(0.0, 1.0, 33).unwrap();
        for i in 0..1000 {
            let v = i as f64 / 999.0;
            let e = (q.quantize(v) - v).abs();
            assert!(e <= q.max_error() + 1e-15, "v={v} e={e}");
        }
    }

    #[test]
    fn many_levels_approach_identity() {
        let q = Quantizer::new(0.0, 1.0, 1 << 16).unwrap();
        assert!((q.quantize(0.123456) - 0.123456).abs() < 1e-4);
    }
}

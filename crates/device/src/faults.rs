//! Stuck-at fault injection.
//!
//! The paper's introduction names stuck cells as one of the scalability
//! barriers for large arrays: "memory cells may get stuck in the ON or OFF
//! state, losing the tunability of conductance states". [`FaultModel`]
//! injects exactly those failure modes so experiments can measure how much
//! of BlockAMC's accuracy advantage survives yield loss.

use rand::Rng;

use crate::{DeviceError, Result};

/// Probabilistic stuck-at fault model applied at programming time.
///
/// Each cell independently gets stuck ON (low-resistance state,
/// conductance `g_on`) with probability `p_stuck_on`, or stuck OFF
/// (high-resistance state, conductance `g_off`) with probability
/// `p_stuck_off`. A stuck cell ignores its programming target entirely.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FaultModel {
    /// Probability a cell is stuck in the ON state.
    pub p_stuck_on: f64,
    /// Probability a cell is stuck in the OFF state.
    pub p_stuck_off: f64,
    /// Conductance of a stuck-ON cell (typically `g_max`).
    pub g_on: f64,
    /// Conductance of a stuck-OFF cell (typically ~0).
    pub g_off: f64,
}

/// The outcome of a per-cell fault draw.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultState {
    /// Cell programs normally.
    Healthy,
    /// Cell is stuck at the ON conductance.
    StuckOn,
    /// Cell is stuck at the OFF conductance.
    StuckOff,
}

impl FaultModel {
    /// A fault-free model (both probabilities zero).
    pub fn none() -> Self {
        FaultModel {
            p_stuck_on: 0.0,
            p_stuck_off: 0.0,
            g_on: 0.0,
            g_off: 0.0,
        }
    }

    /// Creates a fault model.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidConfig`] if probabilities are outside
    /// `[0, 1]`, their sum exceeds 1, or the stuck conductances are
    /// negative/not finite.
    pub fn new(p_stuck_on: f64, p_stuck_off: f64, g_on: f64, g_off: f64) -> Result<Self> {
        let prob_ok = |p: f64| p.is_finite() && (0.0..=1.0).contains(&p);
        if !prob_ok(p_stuck_on) || !prob_ok(p_stuck_off) || p_stuck_on + p_stuck_off > 1.0 {
            return Err(DeviceError::config(format!(
                "fault probabilities must lie in [0,1] and sum to <= 1, \
                 got on={p_stuck_on}, off={p_stuck_off}"
            )));
        }
        if !(g_on.is_finite() && g_on >= 0.0 && g_off.is_finite() && g_off >= 0.0) {
            return Err(DeviceError::config(
                "stuck conductances must be finite and non-negative",
            ));
        }
        Ok(FaultModel {
            p_stuck_on,
            p_stuck_off,
            g_on,
            g_off,
        })
    }

    /// Validates the parameters of a literally-constructed model — the
    /// same checks [`FaultModel::new`] performs, exposed so lifetime
    /// schedulers can fail fast at build time instead of deep inside a
    /// trial.
    ///
    /// # Errors
    ///
    /// The [`DeviceError::InvalidConfig`] conditions of
    /// [`FaultModel::new`].
    pub fn validate(&self) -> Result<()> {
        Self::new(self.p_stuck_on, self.p_stuck_off, self.g_on, self.g_off).map(|_| ())
    }

    /// Returns `true` if the model can never produce a fault.
    pub fn is_none(&self) -> bool {
        self.p_stuck_on == 0.0 && self.p_stuck_off == 0.0
    }

    /// Draws the fault state of one cell.
    pub fn draw<R: Rng + ?Sized>(&self, rng: &mut R) -> FaultState {
        if self.is_none() {
            return FaultState::Healthy;
        }
        let u: f64 = rng.gen();
        if u < self.p_stuck_on {
            FaultState::StuckOn
        } else if u < self.p_stuck_on + self.p_stuck_off {
            FaultState::StuckOff
        } else {
            FaultState::Healthy
        }
    }

    /// Applies the model to a programming `target`, returning the stored
    /// conductance.
    pub fn apply<R: Rng + ?Sized>(&self, target: f64, rng: &mut R) -> f64 {
        match self.draw(rng) {
            FaultState::Healthy => target,
            FaultState::StuckOn => self.g_on,
            FaultState::StuckOff => self.g_off,
        }
    }
}

impl Default for FaultModel {
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn validation() {
        assert!(FaultModel::new(0.01, 0.02, 1e-4, 0.0).is_ok());
        assert!(FaultModel::new(-0.1, 0.0, 1e-4, 0.0).is_err());
        assert!(FaultModel::new(0.7, 0.7, 1e-4, 0.0).is_err());
        assert!(FaultModel::new(0.0, 0.0, -1.0, 0.0).is_err());
        assert!(FaultModel::new(0.0, 0.0, f64::NAN, 0.0).is_err());
    }

    #[test]
    fn none_is_always_healthy() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let m = FaultModel::none();
        assert!(m.is_none());
        for _ in 0..100 {
            assert_eq!(m.draw(&mut rng), FaultState::Healthy);
            assert_eq!(m.apply(5e-5, &mut rng), 5e-5);
        }
    }

    #[test]
    fn fault_rates_are_approximately_respected() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let m = FaultModel::new(0.1, 0.2, 1e-4, 1e-7).unwrap();
        let n = 50_000;
        let mut on = 0;
        let mut off = 0;
        for _ in 0..n {
            match m.draw(&mut rng) {
                FaultState::StuckOn => on += 1,
                FaultState::StuckOff => off += 1,
                FaultState::Healthy => {}
            }
        }
        let p_on = on as f64 / n as f64;
        let p_off = off as f64 / n as f64;
        assert!((p_on - 0.1).abs() < 0.01, "p_on {p_on}");
        assert!((p_off - 0.2).abs() < 0.01, "p_off {p_off}");
    }

    #[test]
    fn stuck_cells_ignore_target() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let m = FaultModel::new(1.0, 0.0, 1.23e-4, 0.0).unwrap();
        assert_eq!(m.apply(5e-5, &mut rng), 1.23e-4);
        let m = FaultModel::new(0.0, 1.0, 1.23e-4, 9e-8).unwrap();
        assert_eq!(m.apply(5e-5, &mut rng), 9e-8);
    }
}

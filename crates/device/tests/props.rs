//! Property-based tests of the device-model invariants.

use amc_device::array::ProgrammedMatrix;
use amc_device::drift::DriftModel;
use amc_device::faults::FaultModel;
use amc_device::mapping::{MappingConfig, MatrixMapping};
use amc_device::quant::Quantizer;
use amc_device::variation::VariationModel;
use amc_linalg::{generate, Matrix};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn any_matrix() -> impl Strategy<Value = Matrix> {
    (1usize..=8, 1usize..=8, any::<u64>()).prop_map(|(r, c, seed)| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let m = generate::gaussian(r, c, &mut rng);
        // Guarantee a non-zero matrix (the mapping rejects all-zeros).
        if m.max_abs() == 0.0 {
            Matrix::filled(r, c, 1.0)
        } else {
            m
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mapping_targets_stay_in_window_or_zero(a in any_matrix()) {
        let cfg = MappingConfig::paper_default();
        let m = MatrixMapping::new(&a, &cfg).unwrap();
        for g in [m.g_pos(), m.g_neg()] {
            for &v in g.as_slice() {
                prop_assert!(
                    v == 0.0 || (cfg.g_min..=cfg.g_max).contains(&v),
                    "target {} outside window", v
                );
            }
        }
        // Pos and neg targets never overlap on the same cell.
        for (p, n) in m.g_pos().as_slice().iter().zip(m.g_neg().as_slice()) {
            prop_assert!(*p == 0.0 || *n == 0.0);
        }
    }

    #[test]
    fn normalization_scale_is_max_abs(a in any_matrix()) {
        let cfg = MappingConfig::paper_default();
        let m = MatrixMapping::new(&a, &cfg).unwrap();
        prop_assert_eq!(m.scale(), a.max_abs());
        // Largest mapped conductance equals g0 exactly.
        let gmax = m.g_pos().max_abs().max(m.g_neg().max_abs());
        prop_assert!((gmax - cfg.g0).abs() < 1e-18);
    }

    #[test]
    fn wide_window_roundtrip_is_exact(a in any_matrix()) {
        let mut cfg = MappingConfig::paper_default();
        cfg.g_min = 1e-15;
        cfg.g_max = 1.0;
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let p = ProgrammedMatrix::program(&a, &cfg, &VariationModel::None, &mut rng).unwrap();
        prop_assert!(p.effective_matrix().approx_eq(&a, 1e-12 * a.max_abs()));
    }

    #[test]
    fn variation_never_produces_negative_conductance(
        a in any_matrix(),
        sigma in 0.0f64..0.5,
        seed in any::<u64>(),
    ) {
        let cfg = MappingConfig::paper_default();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let var = VariationModel::Proportional { sigma_rel: sigma };
        let p = ProgrammedMatrix::program(&a, &cfg, &var, &mut rng).unwrap();
        prop_assert!(p.pos().conductances().as_slice().iter().all(|&v| v >= 0.0));
        prop_assert!(p.neg().conductances().as_slice().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn quantizer_is_idempotent(
        g_min in 1e-7f64..1e-5,
        span in 1.5f64..100.0,
        levels in 2u32..512,
        v in 0.0f64..1e-3,
    ) {
        let q = Quantizer::new(g_min, g_min * span, levels).unwrap();
        let once = q.quantize(v);
        let twice = q.quantize(once);
        prop_assert!((once - twice).abs() < 1e-18, "{once} vs {twice}");
    }

    #[test]
    fn drift_only_decreases_conductance(
        a in any_matrix(),
        t in 1.0f64..1e9,
        seed in any::<u64>(),
    ) {
        let g = a.map(f64::abs).scaled(1e-4 / a.max_abs().max(1e-30));
        let m = DriftModel::typical_rram();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let out = m.apply(&g, t, &mut rng).unwrap();
        for (&o, &i) in out.as_slice().iter().zip(g.as_slice()) {
            prop_assert!(o <= i + 1e-18);
            prop_assert!(o >= 0.0);
        }
    }

    #[test]
    fn decay_factor_starts_at_one_and_never_recovers(
        nu in 0.0f64..0.5,
        t0 in 1e-3f64..10.0,
        t_lo in 0.0f64..1e6,
        dt in 0.0f64..1e6,
    ) {
        let m = DriftModel { nu, nu_sigma: 0.0, t0_s: t0 };
        // No drift at (or before) the verify reference.
        prop_assert_eq!(m.decay_factor(0.0), 1.0);
        prop_assert_eq!(m.decay_factor(t0), 1.0);
        // Monotone nonincreasing in elapsed time, never above 1.
        let (a, b) = (m.decay_factor(t_lo), m.decay_factor(t_lo + dt));
        prop_assert!(a <= 1.0 && b <= a, "decay {a} -> {b} at t={t_lo}+{dt}");
    }

    #[test]
    fn none_models_are_identities_on_apply(
        a in any_matrix(),
        t in 0.0f64..1e9,
        target in -1e3f64..1e3,
        seed in any::<u64>(),
    ) {
        let g = a.map(f64::abs);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let drifted = DriftModel::none().apply(&g, t, &mut rng).unwrap();
        prop_assert_eq!(drifted, g);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let stored = FaultModel::none().apply(target, &mut rng);
        prop_assert_eq!(stored.to_bits(), target.to_bits());
    }

    #[test]
    fn fault_draws_are_deterministic_for_a_fixed_seed(
        p_on in 0.0f64..0.5,
        p_off in 0.0f64..0.5,
        seed in any::<u64>(),
    ) {
        let m = FaultModel { p_stuck_on: p_on, p_stuck_off: p_off, g_on: 1e-4, g_off: 0.0 };
        let draw_all = || {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            (0..64).map(|_| m.draw(&mut rng)).collect::<Vec<_>>()
        };
        prop_assert_eq!(draw_all(), draw_all());
    }

    #[test]
    fn programming_determinism(a in any_matrix(), seed in any::<u64>()) {
        let cfg = MappingConfig::paper_default();
        let var = VariationModel::paper_default(cfg.g0);
        let p1 = ProgrammedMatrix::program(
            &a, &cfg, &var, &mut ChaCha8Rng::seed_from_u64(seed)).unwrap();
        let p2 = ProgrammedMatrix::program(
            &a, &cfg, &var, &mut ChaCha8Rng::seed_from_u64(seed)).unwrap();
        prop_assert_eq!(p1, p2);
    }
}

//! Shared report emission: a small JSON value model and an aligned
//! text-table builder.
//!
//! Every machine-readable artifact the repro binary writes
//! (`BENCH_parallel.json`, `BENCH_scenarios.json`, …) goes through
//! [`Json`] instead of hand-rolled `format!` string concatenation, so
//! escaping, nesting, and number formatting are implemented once. The
//! vendored `serde` is a derive-marker stand-in (see `vendor/serde`), so
//! this module is the workspace's serialization layer until a real
//! registry is reachable.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values render as `null`, which keeps
    /// emitted files standard-compliant).
    Num(f64),
    /// An integer, rendered without a decimal point.
    Int(i64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Renders the value as pretty-printed JSON (2-space indent) with a
    /// trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    // `{:?}` is the shortest representation that parses
                    // back to the same f64, and always carries a decimal
                    // point or exponent.
                    let _ = write!(out, "{x:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Str(s) => render_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (k, item) in items.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.render_into(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (k, (key, value)) in pairs.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    render_string(out, key);
                    out.push_str(": ");
                    value.render_into(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn render_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Int(v as i64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl From<Option<f64>> for Json {
    fn from(v: Option<f64>) -> Json {
        v.map_or(Json::Null, Json::Num)
    }
}

impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

/// Writes a rendered JSON value to `path`.
///
/// # Errors
///
/// Propagates filesystem failures.
pub fn write_json(path: &str, value: &Json) -> std::io::Result<()> {
    std::fs::write(path, value.render())
}

/// An aligned plain-text table: first column left-aligned, the rest
/// right-aligned, widths fitted to content.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(headers: impl IntoIterator<Item = impl Into<String>>) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (shorter rows are padded with empty cells).
    pub fn row(&mut self, cells: impl IntoIterator<Item = impl Into<String>>) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Renders the table with a separator under the header.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain([self.headers.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        let measure = |widths: &mut Vec<usize>, cells: &[String]| {
            for (k, c) in cells.iter().enumerate() {
                widths[k] = widths[k].max(c.chars().count());
            }
        };
        measure(&mut widths, &self.headers);
        for r in &self.rows {
            measure(&mut widths, r);
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            for (k, w) in widths.iter().enumerate() {
                let cell = cells.get(k).map(String::as_str).unwrap_or("");
                if k > 0 {
                    out.push_str("  ");
                }
                if k == 0 {
                    let _ = write!(out, "{cell:<w$}");
                } else {
                    let _ = write!(out, "{cell:>w$}");
                }
            }
            // Trailing pad spaces from the left-aligned last column.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        render_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            render_row(&mut out, r);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_scalars_render() {
        assert_eq!(Json::Null.render(), "null\n");
        assert_eq!(Json::Bool(true).render(), "true\n");
        assert_eq!(Json::Int(-3).render(), "-3\n");
        assert_eq!(Json::Num(0.5).render(), "0.5\n");
        assert_eq!(Json::Num(f64::NAN).render(), "null\n");
        assert_eq!(Json::from(None::<f64>).render(), "null\n");
        assert_eq!(Json::Num(1e-9).render(), "1e-9\n");
    }

    #[test]
    fn json_strings_are_escaped() {
        let s = Json::Str("a\"b\\c\nd\u{1}".to_string());
        assert_eq!(s.render(), "\"a\\\"b\\\\c\\nd\\u0001\"\n");
    }

    #[test]
    fn json_structures_nest_with_indentation() {
        let v = Json::obj([
            ("name", Json::from("x")),
            ("vals", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
            ("empty", Json::Arr(vec![])),
            ("nested", Json::obj([("k", Json::Bool(false))])),
        ]);
        let text = v.render();
        assert_eq!(
            text,
            "{\n  \"name\": \"x\",\n  \"vals\": [\n    1,\n    2\n  ],\n  \
             \"empty\": [],\n  \"nested\": {\n    \"k\": false\n  }\n}\n"
        );
    }

    #[test]
    fn json_numbers_round_trip_textually() {
        // `{:?}` keeps full precision: parsing the text back yields the
        // same bits.
        for x in [0.1, 1.0 / 3.0, 6.02e23, -1.6e-19] {
            let text = format!("{x:?}");
            assert_eq!(text.parse::<f64>().unwrap(), x);
        }
    }

    #[test]
    fn text_table_aligns_columns() {
        let mut t = TextTable::new(["name", "n", "err"]);
        t.row(["wishart", "64", "0.05"]);
        t.row(["poisson2d", "256", "0.1"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].contains("wishart"));
        // Numeric columns right-aligned: "64" under "n" ends where "256" ends.
        let n_end_2 = lines[2].find("64").unwrap() + 2;
        let n_end_3 = lines[3].find("256").unwrap() + 3;
        assert_eq!(n_end_2, n_end_3);
    }
}

//! Shared report emission: the workspace JSON value model (re-exported
//! from `amc-config`) and an aligned text-table builder.
//!
//! Every machine-readable artifact the repro binary writes
//! (`BENCH_parallel.json`, `BENCH_scenarios.json`, …) goes through
//! [`Json`] instead of hand-rolled `format!` string concatenation, so
//! escaping, nesting, and number formatting are implemented once. The
//! value model used to live here; it is now `amc-config`'s — the same
//! type campaign files parse into — re-exported under its historical
//! path so report-building code is unchanged while gaining
//! [`Json::parse`] and the `ToConfig` / `FromConfig` machinery.

use std::fmt::Write as _;

pub use amc_config::{write_json, Json};

/// An aligned plain-text table: first column left-aligned, the rest
/// right-aligned, widths fitted to content.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(headers: impl IntoIterator<Item = impl Into<String>>) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (shorter rows are padded with empty cells).
    pub fn row(&mut self, cells: impl IntoIterator<Item = impl Into<String>>) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Renders the table with a separator under the header.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain([self.headers.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        let measure = |widths: &mut Vec<usize>, cells: &[String]| {
            for (k, c) in cells.iter().enumerate() {
                widths[k] = widths[k].max(c.chars().count());
            }
        };
        measure(&mut widths, &self.headers);
        for r in &self.rows {
            measure(&mut widths, r);
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            for (k, w) in widths.iter().enumerate() {
                let cell = cells.get(k).map(String::as_str).unwrap_or("");
                if k > 0 {
                    out.push_str("  ");
                }
                if k == 0 {
                    let _ = write!(out, "{cell:<w$}");
                } else {
                    let _ = write!(out, "{cell:>w$}");
                }
            }
            // Trailing pad spaces from the left-aligned last column.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        render_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            render_row(&mut out, r);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_scalars_render() {
        assert_eq!(Json::Null.render(), "null\n");
        assert_eq!(Json::Bool(true).render(), "true\n");
        assert_eq!(Json::Int(-3).render(), "-3\n");
        assert_eq!(Json::Num(0.5).render(), "0.5\n");
        assert_eq!(Json::Num(f64::NAN).render(), "null\n");
        assert_eq!(Json::from(None::<f64>).render(), "null\n");
        assert_eq!(Json::Num(1e-9).render(), "1e-9\n");
    }

    #[test]
    fn json_strings_are_escaped() {
        let s = Json::Str("a\"b\\c\nd\u{1}".to_string());
        assert_eq!(s.render(), "\"a\\\"b\\\\c\\nd\\u0001\"\n");
    }

    #[test]
    fn json_structures_nest_with_indentation() {
        let v = Json::obj([
            ("name", Json::from("x")),
            ("vals", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
            ("empty", Json::Arr(vec![])),
            ("nested", Json::obj([("k", Json::Bool(false))])),
        ]);
        let text = v.render();
        assert_eq!(
            text,
            "{\n  \"name\": \"x\",\n  \"vals\": [\n    1,\n    2\n  ],\n  \
             \"empty\": [],\n  \"nested\": {\n    \"k\": false\n  }\n}\n"
        );
    }

    #[test]
    fn json_numbers_round_trip_textually() {
        // `{:?}` keeps full precision: parsing the text back yields the
        // same bits.
        for x in [0.1, 1.0 / 3.0, 6.02e23, -1.6e-19] {
            let text = format!("{x:?}");
            assert_eq!(text.parse::<f64>().unwrap(), x);
        }
    }

    #[test]
    fn text_table_aligns_columns() {
        let mut t = TextTable::new(["name", "n", "err"]);
        t.row(["wishart", "64", "0.05"]);
        t.row(["poisson2d", "256", "0.1"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].contains("wishart"));
        // Numeric columns right-aligned: "64" under "n" ends where "256" ends.
        let n_end_2 = lines[2].find("64").unwrap() + 2;
        let n_end_3 = lines[3].find("256").unwrap() + 3;
        assert_eq!(n_end_2, n_end_3);
    }
}

//! `repro` — regenerates every table and figure of the BlockAMC paper.
//!
//! ```text
//! repro [--quick] [--trials N] [--seed N] [--addr HOST:PORT] <command>
//! ```
//!
//! Absolute numbers depend on the substituted simulation stack (see
//! DESIGN.md); the *shapes* — who wins, by how much, and how errors grow
//! with size — are the reproduction targets recorded in EXPERIMENTS.md.

use amc_bench::report::{Json, TextTable};
use amc_bench::{
    accuracy_sweep, make_workload, presets, render_sweep, report, step_trace_comparison,
    MatrixFamily, PAPER_SIZES, PAPER_TRIALS, QUICK_SIZES, RAW_TOEPLITZ_MAX_COND,
};
use amc_linalg::{lu, metrics};
use blockamc::engine::{CircuitEngine, CircuitEngineConfig};
use blockamc::solver::{BlockAmcSolver, Stages};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The one parse of the shared command-line flags. Every subcommand
/// reads scale decisions from here instead of re-deriving them from a
/// threaded-through `quick` bool (which each command used to duplicate).
struct RunOpts {
    quick: bool,
    sizes: Vec<usize>,
    trials: usize,
    /// The "showcase" size for Figs. 6 and 8 (256 in the paper).
    showcase_n: usize,
    /// Base seed of seed-taking commands (`serve-bench`).
    seed: u64,
    /// Listen address of `repro serve`.
    addr: String,
    /// `repro serve --metrics`: dump the full metrics registry on exit.
    metrics: bool,
    /// `repro run --workers N`: override the campaign file's worker
    /// count (reports are bit-identical at any value).
    workers: Option<usize>,
}

impl RunOpts {
    fn parse(args: &[String]) -> RunOpts {
        let quick = args.iter().any(|a| a == "--quick");
        let flag = |name: &str| {
            args.iter()
                .position(|a| a == name)
                .and_then(|i| args.get(i + 1))
        };
        RunOpts {
            quick,
            sizes: if quick {
                QUICK_SIZES.to_vec()
            } else {
                PAPER_SIZES.to_vec()
            },
            trials: flag("--trials")
                .and_then(|v| v.parse().ok())
                .unwrap_or(if quick { 10 } else { PAPER_TRIALS }),
            showcase_n: if quick { 64 } else { 256 },
            seed: flag("--seed").and_then(|v| v.parse().ok()).unwrap_or(7),
            addr: flag("--addr")
                .cloned()
                .unwrap_or_else(|| "127.0.0.1:7171".to_string()),
            metrics: args.iter().any(|a| a == "--metrics"),
            workers: flag("--workers").and_then(|v| v.parse().ok()),
        }
    }

    /// Quick-mode/full-mode scale selection, in one place.
    fn pick<T>(&self, quick: T, full: T) -> T {
        if self.quick {
            quick
        } else {
            full
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = RunOpts::parse(&args);
    // Flag values (e.g. the N of `--trials N`) are not commands.
    let flag_values: Vec<usize> = ["--trials", "--seed", "--addr", "--workers"]
        .iter()
        .filter_map(|f| args.iter().position(|a| a == *f).map(|i| i + 1))
        .collect();
    let cmds: Vec<&str> = args
        .iter()
        .enumerate()
        .filter(|(i, a)| !a.starts_with("--") && !flag_values.contains(i))
        .map(|(_, a)| a.as_str())
        .collect();
    let cmd = cmds.first().copied().unwrap_or("all");

    let run = |name: &str| cmd == "all" || cmd == name;
    let mut ran_any = false;
    if run("fig6") {
        fig6(&opts);
        ran_any = true;
    }
    if run("fig7") {
        fig7(&opts);
        ran_any = true;
    }
    if run("fig8") {
        fig8(&opts);
        ran_any = true;
    }
    if run("fig9") {
        fig9(&opts);
        ran_any = true;
    }
    if run("fig10") {
        fig10();
        ran_any = true;
    }
    if run("headline") {
        headline();
        ran_any = true;
    }
    if run("scaling") {
        scaling();
        ran_any = true;
    }
    if run("ablation") {
        ablation(&opts);
        ran_any = true;
    }
    if run("transient") {
        transient();
        ran_any = true;
    }
    if run("yield") {
        yield_report(&opts);
        ran_any = true;
    }
    if run("parallel") {
        parallel(&opts);
        ran_any = true;
    }
    if run("scenarios") {
        scenarios(&opts);
        ran_any = true;
    }
    if run("engines") {
        engines(&opts);
        ran_any = true;
    }
    if run("simd") {
        simd(&opts);
        ran_any = true;
    }
    if run("serve-bench") {
        serve_bench(&opts);
        ran_any = true;
    }
    if run("lifetime") {
        lifetime(&opts);
        ran_any = true;
    }
    if run("trace") {
        trace(&opts);
        ran_any = true;
    }
    // The server blocks until a wire Shutdown; it is not part of `all`.
    if cmd == "serve" {
        serve(&opts);
        ran_any = true;
    }
    // File-driven and tree-writing commands are explicit-only too.
    if cmd == "run" {
        run_file(&opts, cmds.get(1).copied());
        ran_any = true;
    }
    if cmd == "export-campaigns" {
        export_campaigns();
        ran_any = true;
    }
    if !ran_any {
        eprintln!(
            "unknown command '{cmd}'. usage: repro [--quick] [--trials N] [--seed N] \
             [--addr HOST:PORT] [--metrics] [--workers N] \
             <fig6|fig7|fig8|fig9|fig10|headline|scaling|ablation|transient|yield|parallel\
             |scenarios|engines|simd|serve|serve-bench|lifetime|trace\
             |run <campaign.json>|export-campaigns|all>"
        );
        std::process::exit(2);
    }
}

/// Runs a campaign loaded from a `CampaignFile` JSON spec (see
/// `amc_scenario::spec` and the committed `campaigns/*.json`).
/// `--quick` selects the file's quick variant and `--workers` overrides
/// its worker count; the report is bit-identical to the file's in-code
/// twin at any worker count.
fn run_file(opts: &RunOpts, path: Option<&str>) {
    use amc_scenario::campaigns::extended_registry;
    use amc_scenario::CampaignFile;

    banner("Run — a campaign loaded from a file");
    let Some(path) = path else {
        eprintln!("usage: repro [--quick] [--workers N] run <campaign.json>");
        std::process::exit(2);
    };
    let file = match CampaignFile::load(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    let spec = file.select(opts.quick);
    let campaign = match spec.lower(extended_registry()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{path}: {e}");
            std::process::exit(1);
        }
    };
    let workers = opts.workers.unwrap_or(campaign.workers());
    println!(
        "[{}] {} cells x {} trial(s), {} worker(s) (from {path}, {} variant)",
        campaign.name(),
        campaign.cell_count(),
        campaign.trials(),
        workers,
        if opts.quick { "quick" } else { "full" }
    );
    match campaign.run_with_workers(workers) {
        Ok(report) => {
            print!("{}", render_campaign_cells(&report));
            let artifact = format!(
                "BENCH_campaign_{}.json",
                report
                    .name
                    .replace(|c: char| !c.is_ascii_alphanumeric(), "_")
            );
            match report::write_json(&artifact, &campaign_report_json(&report)) {
                Ok(()) => println!("\nwrote {artifact}"),
                Err(e) => println!("\ncould not write {artifact}: {e}"),
            }
        }
        Err(e) => {
            eprintln!("campaign '{}' failed: {e}", campaign.name());
            std::process::exit(1);
        }
    }
    println!(
        "-> the file lowers onto the same Campaign::builder path as the \
         in-code studies, so a committed spec is a reproducible study: \
         same seeds, same shards, bit-identical report."
    );
}

/// Regenerates the committed `campaigns/*.json` specs from the in-code
/// campaign constructors (both `--quick` and full variants per file).
/// CI re-runs this to guard against the files drifting from the code.
fn export_campaigns() {
    use amc_scenario::{campaigns, CampaignFile, CampaignSpec};

    banner("Export — the shipped campaigns as files");
    type Ctor = fn(bool) -> amc_scenario::Result<amc_scenario::Campaign>;
    let shipped: [(&str, Ctor); 4] = [
        ("depth_sweep", campaigns::depth_sweep),
        ("split_rule", campaigns::split_rule_study),
        ("engine_ladder", campaigns::engine_ladder),
        ("simd_scaling", campaigns::simd_scaling),
    ];
    if let Err(e) = std::fs::create_dir_all("campaigns") {
        eprintln!("could not create campaigns/: {e}");
        std::process::exit(1);
    }
    for (name, ctor) in shipped {
        let capture = |quick: bool| ctor(quick).map(|c| CampaignSpec::from_campaign(&c));
        let file = match (capture(true), capture(false)) {
            (Ok(quick), Ok(full)) => CampaignFile { quick, full },
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("could not build campaign '{name}': {e}");
                std::process::exit(1);
            }
        };
        let path = format!("campaigns/{name}.json");
        match std::fs::write(&path, file.render()) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("could not write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// Runs the solver service on a TCP listener until a client sends
/// `Shutdown`. All engine backends of the extended registry (including
/// `simd`) are addressable by name over the wire.
fn serve(opts: &RunOpts) {
    use amc_serve::server::{Server, ServerConfig};

    banner("Serve — solver-as-a-service over TCP");
    let listener = match std::net::TcpListener::bind(&opts.addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("could not bind {}: {e}", opts.addr);
            std::process::exit(1);
        }
    };
    let server = Server::new(
        ServerConfig::default(),
        amc_scenario::campaigns::extended_registry(),
    );
    println!(
        "listening on {} (send a Shutdown request to stop)",
        listener
            .local_addr()
            .map_or(opts.addr.clone(), |a| a.to_string())
    );
    if let Err(e) = server.serve_tcp(listener) {
        eprintln!("server error: {e}");
        std::process::exit(1);
    }
    let stats = server.stats();
    println!(
        "served {} request(s), {} RHS solved, hit-rate {:.1}%",
        stats.requests,
        stats.solved_rhs,
        stats.hit_rate() * 100.0
    );
    if opts.metrics {
        println!("\nmetrics registry at shutdown:");
        print!("{}", server.metrics().render());
    }
}

/// Closed-loop load generation against an in-process server, written to
/// `BENCH_server.json`: a *hot* phase (matrix pool fits the cache) and a
/// *churn* phase (pool overflows it, forcing evictions and re-prepares).
fn serve_bench(opts: &RunOpts) {
    use amc_serve::loadgen::{self, LoadGenConfig};
    use amc_serve::server::{Server, ServerConfig};
    use amc_serve::wire::EngineRef;

    banner("Serve-bench — multi-client load against the solver service");
    let cache_capacity = 4;
    let server_config = ServerConfig {
        cache_capacity,
        solver_workers: amc_par::available_workers().clamp(2, 4),
        batch_workers: opts.pick(1, 2),
        queue_capacity: 64,
        ..ServerConfig::default()
    };
    let base = LoadGenConfig {
        clients: opts.pick(4, 8),
        requests_per_client: opts.pick(32, 128),
        distinct_matrices: cache_capacity.min(3),
        n: opts.pick(32, 64),
        engine: EngineRef::new("numeric", 0),
        seed: opts.seed,
        ..LoadGenConfig::default()
    };
    println!(
        "cache capacity {cache_capacity}, {} dispatch worker(s), {} clients x {} requests, n = {}\n",
        server_config.solver_workers, base.clients, base.requests_per_client, base.n
    );

    let mut table = TextTable::new([
        "phase", "rps", "p50", "p95", "p99", "hit-rate", "coalesce", "busy",
    ]);
    let mut phases_json = Vec::new();
    for (phase, distinct) in [
        ("hot", base.distinct_matrices),
        // More matrices than cache slots: every miss is an eviction.
        ("churn", cache_capacity * 2),
    ] {
        let server = Server::new(
            server_config.clone(),
            amc_scenario::campaigns::extended_registry(),
        );
        let cfg = LoadGenConfig {
            distinct_matrices: distinct,
            ..base.clone()
        };
        let r = match loadgen::run(&server, &cfg) {
            Ok(r) => r,
            Err(e) => {
                println!("load generation failed ({phase}): {e}");
                continue;
            }
        };
        server.shutdown();
        table.row([
            phase.to_string(),
            format!("{:.0}", r.throughput_rps),
            format!("{:.3} ms", r.p50_ms),
            format!("{:.3} ms", r.p95_ms),
            format!("{:.3} ms", r.p99_ms),
            format!("{:.1}%", r.hit_rate * 100.0),
            format!("{:.2}", r.coalescing_factor),
            r.busy_rejections.to_string(),
        ]);
        phases_json.push(Json::obj([
            ("phase", phase.into()),
            ("distinct_matrices", distinct.into()),
            ("requests", Json::Int(r.requests as i64)),
            ("solved", Json::Int(r.solved as i64)),
            ("busy_rejections", Json::Int(r.busy_rejections as i64)),
            ("busy_giveups", Json::Int(r.busy_giveups as i64)),
            ("elapsed_s", r.elapsed_s.into()),
            ("throughput_rps", r.throughput_rps.into()),
            ("p50_ms", r.p50_ms.into()),
            ("p95_ms", r.p95_ms.into()),
            ("p99_ms", r.p99_ms.into()),
            ("hit_rate", r.hit_rate.into()),
            ("coalescing_factor", r.coalescing_factor.into()),
            (
                "server",
                Json::obj([
                    ("hits", Json::Int(r.server.hits as i64)),
                    ("misses", Json::Int(r.server.misses as i64)),
                    ("evictions", Json::Int(r.server.evictions as i64)),
                    ("insertions", Json::Int(r.server.insertions as i64)),
                    ("entries", Json::Int(r.server.entries as i64)),
                    ("capacity", Json::Int(r.server.capacity as i64)),
                    ("requests", Json::Int(r.server.requests as i64)),
                    ("solved_rhs", Json::Int(r.server.solved_rhs as i64)),
                    (
                        "dispatch_batches",
                        Json::Int(r.server.dispatch_batches as i64),
                    ),
                    (
                        "coalesced_requests",
                        Json::Int(r.server.coalesced_requests as i64),
                    ),
                ]),
            ),
        ]));
    }
    print!("{}", table.render());

    let json = Json::obj([
        ("bench", "server".into()),
        ("quick", opts.quick.into()),
        ("host_workers", amc_par::available_workers().into()),
        ("cache_capacity", cache_capacity.into()),
        ("solver_workers", server_config.solver_workers.into()),
        ("batch_workers", server_config.batch_workers.into()),
        ("queue_capacity", server_config.queue_capacity.into()),
        ("clients", base.clients.into()),
        ("requests_per_client", base.requests_per_client.into()),
        ("n", base.n.into()),
        ("engine", base.engine.name.clone().into()),
        ("seed", Json::Int(base.seed as i64)),
        ("phases", Json::Arr(phases_json)),
    ]);
    match report::write_json("BENCH_server.json", &json) {
        Ok(()) => println!("\nwrote BENCH_server.json"),
        Err(e) => println!("\ncould not write BENCH_server.json: {e}"),
    }
    println!(
        "-> the hot phase shows what a resident prepared solver buys (pure \
         cache hits, coalesced batches); the churn phase prices eviction: \
         every re-prepare pays the programming cost the cache amortizes."
    );
}

/// The observability study, written to `BENCH_obs.json` plus a Chrome
/// trace-event artifact (`BENCH_obs_trace.json`, loadable in Perfetto
/// or `chrome://tracing`):
///
/// 1. traces one prepare + solve on the circuit engine and breaks the
///    wall time down per phase from the recorded span tree;
/// 2. proves the tracing contract — tracing **on** is bit-identical to
///    tracing **off**, for single solves and for parallel batches at
///    1/2/4 workers (the command exits nonzero if this ever fails);
/// 3. measures the disabled-recorder overhead ratio (the no-op guard;
///    reported, not asserted — wall clocks are machine noise);
/// 4. runs a traced loopback serve burst and reports the serve latency
///    histograms (`serve.dispatch_us`, `serve.wait_us`,
///    `loadgen.latency_us`) with exact p50/p95/p99.
fn trace(opts: &RunOpts) {
    use amc_obs::{MetricValue, MetricsSnapshot, Recorder, Trace, TraceSession};
    use amc_serve::loadgen::{self, LoadGenConfig};
    use amc_serve::server::{Server, ServerConfig};
    use amc_serve::wire::EngineRef;

    banner("Trace — spans, metrics, and the bit-identity guarantee");
    let n = opts.pick(64, 256);
    let mut rng = ChaCha8Rng::seed_from_u64(opts.seed);
    let (a, b) = make_workload(MatrixFamily::Wishart, n, &mut rng);
    let batch: Vec<Vec<f64>> = (0..8)
        .map(|i| b.iter().map(|v| v * (1.0 + i as f64 * 0.01)).collect())
        .collect();

    // One prepare + solve + batch under `recorder`; the returned
    // numbers must not depend on whether the recorder records.
    let run_solves = |recorder: Recorder, workers: usize| -> (Vec<u64>, Vec<Vec<u64>>) {
        let mut solver = BlockAmcSolver::new(
            CircuitEngine::new(CircuitEngineConfig::paper_variation(), opts.seed),
            Stages::Two,
        );
        solver.set_recorder(recorder);
        let mut prepared = solver.prepare(&a).expect("prepare");
        let x = prepared.solve(&b).expect("solve").x;
        let mut replica = prepared.replicate(1).remove(0);
        let xs = replica
            .solve_batch_parallel(&batch, workers)
            .expect("batch solve");
        let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<u64>>();
        (bits(&x), xs.iter().map(|x| bits(x)).collect())
    };

    // --- Bit identity: tracing off vs on, at 1/2/4 batch workers. ---
    let mut bit_identical = true;
    let reference = run_solves(Recorder::disabled(), 1);
    for workers in [1usize, 2, 4] {
        let session = TraceSession::new();
        let traced = run_solves(session.recorder(), workers);
        let trace = session.drain();
        if traced != reference {
            bit_identical = false;
            println!("BIT-IDENTITY VIOLATION: tracing on, {workers} worker(s)");
        }
        println!(
            "tracing on, {workers} worker(s): {} span(s) recorded, outputs {}",
            trace.events().len(),
            if traced == reference {
                "bit-identical to tracing off"
            } else {
                "DIVERGED"
            }
        );
    }

    // --- The traced run kept for the artifact + phase breakdown. ---
    let session = TraceSession::new();
    let solve_t0 = std::time::Instant::now();
    run_solves(session.recorder(), 2);
    let traced_s = solve_t0.elapsed().as_secs_f64();
    let solve_trace = session.drain();
    let noop_t0 = std::time::Instant::now();
    run_solves(Recorder::disabled(), 2);
    let disabled_s = noop_t0.elapsed().as_secs_f64();
    let overhead_ratio = if disabled_s > 0.0 {
        traced_s / disabled_s
    } else {
        1.0
    };
    println!(
        "\nno-op guard: traced {traced_s:.4}s vs disabled {disabled_s:.4}s \
         (ratio {overhead_ratio:.3})\n"
    );
    print!("{}", solve_trace.flame_tree());

    let phase_cell = |trace: &Trace, name: &'static str| -> Json {
        let calls = trace.events().iter().filter(|e| e.name == name).count();
        Json::obj([
            ("span", name.into()),
            ("calls", calls.into()),
            ("total_ns", Json::Int(trace.total_ns(name) as i64)),
        ])
    };
    let phases: Vec<Json> = [
        "prepare",
        "prepare.partition",
        "prepare.schur",
        "prepare.program",
        "prepare.program_mvm",
        "solve",
        "cascade.inv1",
        "cascade.mvm2",
        "cascade.inv3",
        "cascade.mvm4",
        "cascade.inv5",
        "engine.inv",
        "batch",
    ]
    .iter()
    .map(|name| phase_cell(&solve_trace, name))
    .collect();

    // --- A traced serve burst for the latency histograms. ---
    let serve_session = TraceSession::new();
    let server = Server::new(
        ServerConfig {
            cache_capacity: 4,
            solver_workers: 2,
            batch_workers: 2,
            queue_capacity: 64,
            aging: None,
            trace: Some(serve_session.clone()),
        },
        amc_scenario::campaigns::extended_registry(),
    );
    let load = LoadGenConfig {
        clients: opts.pick(2, 4),
        requests_per_client: opts.pick(16, 64),
        distinct_matrices: 3,
        n: 32,
        engine: EngineRef::new("numeric", 0),
        seed: opts.seed,
        ..LoadGenConfig::default()
    };
    let (serve_metrics, load_report) = match loadgen::run(&server, &load) {
        Ok(r) => (server.metrics(), Some(r)),
        Err(e) => {
            println!("serve burst failed: {e}");
            (server.metrics(), None)
        }
    };
    server.shutdown();
    // Every worker and connection lane must flush before the drain.
    server.join_connections();
    let serve_trace = serve_session.drain();
    println!(
        "\nserve burst: {} span(s) recorded",
        serve_trace.events().len()
    );
    print!("{}", serve_metrics.render());

    let hist_cell = |m: &MetricsSnapshot, name: &str| -> Json {
        match m.get(name) {
            Some(MetricValue::Histogram(h)) => Json::obj([
                ("count", Json::Int(h.count as i64)),
                ("min_us", Json::Int(h.min as i64)),
                ("p50_us", Json::Int(h.p50 as i64)),
                ("p95_us", Json::Int(h.p95 as i64)),
                ("p99_us", Json::Int(h.p99 as i64)),
                ("max_us", Json::Int(h.max as i64)),
                ("mean_us", h.mean.into()),
            ]),
            _ => Json::Null,
        }
    };
    let load_metrics = load_report.as_ref().map(|r| r.metrics.clone());

    // --- The Chrome trace artifact: solve + serve lanes, one file. ---
    let lane_offset = solve_trace
        .events()
        .iter()
        .map(|e| e.worker)
        .max()
        .map_or(0, |w| w + 1);
    let mut events = solve_trace.events().to_vec();
    events.extend(serve_trace.events().iter().cloned().map(|mut e| {
        e.worker += lane_offset;
        e
    }));
    let combined = Trace::from_events(events);
    match std::fs::write("BENCH_obs_trace.json", combined.chrome_trace_json()) {
        Ok(()) => println!("\nwrote BENCH_obs_trace.json (open in Perfetto / chrome://tracing)"),
        Err(e) => println!("\ncould not write BENCH_obs_trace.json: {e}"),
    }

    let json = Json::obj([
        ("bench", "obs".into()),
        ("quick", opts.quick.into()),
        ("n", n.into()),
        ("seed", Json::Int(opts.seed as i64)),
        ("bit_identical", bit_identical.into()),
        ("solve_spans", solve_trace.events().len().into()),
        ("serve_spans", serve_trace.events().len().into()),
        (
            "dropped_spans",
            Json::Int((solve_trace.dropped() + serve_trace.dropped()) as i64),
        ),
        ("disabled_overhead_ratio", overhead_ratio.into()),
        ("phases", Json::Arr(phases)),
        (
            "serve",
            Json::obj([
                (
                    "dispatch_us",
                    hist_cell(&serve_metrics, "serve.dispatch_us"),
                ),
                ("wait_us", hist_cell(&serve_metrics, "serve.wait_us")),
                ("batch_rhs", hist_cell(&serve_metrics, "serve.batch_rhs")),
                (
                    "latency_us",
                    load_metrics
                        .as_ref()
                        .map_or(Json::Null, |m| hist_cell(m, "loadgen.latency_us")),
                ),
                (
                    "busy_rejections",
                    Json::Int(serve_metrics.counter("serve.busy_rejections") as i64),
                ),
                (
                    "busy_retries",
                    load_metrics.as_ref().map_or(Json::Null, |m| {
                        Json::Int(m.counter("loadgen.busy_retries") as i64)
                    }),
                ),
                (
                    "busy_giveups",
                    load_metrics.as_ref().map_or(Json::Null, |m| {
                        Json::Int(m.counter("loadgen.busy_giveups") as i64)
                    }),
                ),
            ]),
        ),
    ]);
    match report::write_json("BENCH_obs.json", &json) {
        Ok(()) => println!("wrote BENCH_obs.json"),
        Err(e) => println!("could not write BENCH_obs.json: {e}"),
    }
    if !bit_identical {
        eprintln!("tracing changed the numbers — the read-only contract is broken");
        std::process::exit(1);
    }
    println!(
        "-> spans record only at phase boundaries (two clock reads each), \
         so tracing is safe to leave on; the guarantee that matters is \
         bit-identity, checked above at every worker count."
    );
}

/// The simd-backend performance study, written to `BENCH_simd.json`:
/// factorize+solve and amortized-solve timings of the registered
/// micro-tiled backend against the exact and cache-blocked digital
/// engines, sparse-aware vs dense Schur complements on PDN matrices,
/// the parallel-prepare worker sweep, and the large-`n` scaling
/// campaign.
fn simd(opts: &RunOpts) {
    use amc_scenario::campaigns;
    use amc_scenario::workload::{WorkloadFamily, WorkloadSpec};
    use blockamc::partition::BlockPartition;
    use blockamc::solver::SolverConfig;
    use std::time::Instant;

    banner("SIMD — micro-tiled backend, sparse Schur, parallel prepare");
    let registry = campaigns::extended_registry();
    println!(
        "registered backends: {}",
        registry.names().collect::<Vec<_>>().join(", ")
    );
    let reps = opts.pick(2, 3);
    let backends = ["numeric", "blocked", "simd"];

    // --- Factorize + solve: one programming, one INV (which runs the
    // lazy factorization), per backend and size.
    let sizes: &[usize] = opts.pick(&[128, 256, 512][..], &[256, 512, 1024, 2048][..]);
    let mut fs_json = Vec::new();
    let mut fs_table = TextTable::new(["n", "engine", "factorize+solve", "vs numeric"]);
    let mut amortized_json = Vec::new();
    let mut amortized_table = TextTable::new(["n", "engine", "per solve (amortized)"]);
    for &n in sizes {
        let mut rng = ChaCha8Rng::seed_from_u64(0x51D0 + n as u64);
        let a =
            amc_linalg::generate::diagonally_dominant(n, 1.5, &mut rng).expect("workload matrix");
        let b = amc_linalg::generate::random_vector(n, &mut rng);
        let mut numeric_s = 0.0;
        for name in backends {
            let mut best = f64::INFINITY;
            for _ in 0..reps {
                let mut engine = registry.build(name, 0).expect("registered backend");
                let mut out = Vec::new();
                let start = Instant::now();
                let mut op = engine.program(&a).expect("program");
                engine.inv_into(&mut op, &b, &mut out).expect("inv");
                best = best.min(start.elapsed().as_secs_f64());
            }
            if name == "numeric" {
                numeric_s = best;
            }
            fs_table.row([
                n.to_string(),
                name.to_string(),
                format!("{:.3} ms", best * 1e3),
                format!("{:.2}x", numeric_s / best),
            ]);
            fs_json.push(Json::obj([
                ("n", n.into()),
                ("engine", name.into()),
                ("wall_s", best.into()),
                ("speedup_vs_numeric", (numeric_s / best).into()),
            ]));

            // Amortized: factorization already installed in the
            // operand, stream further solves through inv_into.
            let mut engine = registry.build(name, 0).expect("registered backend");
            let mut op = engine.program(&a).expect("program");
            let mut out = Vec::new();
            engine.inv_into(&mut op, &b, &mut out).expect("warm-up inv");
            let solves = opts.pick(8, 16);
            let start = Instant::now();
            for _ in 0..solves {
                engine.inv_into(&mut op, &b, &mut out).expect("inv");
            }
            let per_solve = start.elapsed().as_secs_f64() / solves as f64;
            amortized_table.row([
                n.to_string(),
                name.to_string(),
                format!("{:.1} us", per_solve * 1e6),
            ]);
            amortized_json.push(Json::obj([
                ("n", n.into()),
                ("engine", name.into()),
                ("per_solve_s", per_solve.into()),
            ]));
        }
    }
    println!("\nfactorize + first solve (diagonally dominant, best of {reps}):\n");
    print!("{}", fs_table.render());
    println!("\namortized solves on a warm factorization:\n");
    print!("{}", amortized_table.render());

    // --- Sparse-aware vs dense Schur complement on PDN matrices.
    let schur_sizes: &[usize] = opts.pick(&[256, 1024][..], &[256, 512, 1024, 2048][..]);
    let mut schur_json = Vec::new();
    let mut schur_table = TextTable::new(["n", "coupling nnz", "dense", "sparse", "speedup"]);
    for &n in schur_sizes {
        let inst = WorkloadSpec::new("pdn", WorkloadFamily::Pdn, n, 0x9D9)
            .instantiate(1)
            .expect("PDN workload");
        let p = BlockPartition::halves(&inst.matrix).expect("partition");
        let density = p.coupling_density();
        let time_best = |f: &dyn Fn() -> amc_linalg::Matrix| {
            let mut best = f64::INFINITY;
            for _ in 0..reps {
                let start = Instant::now();
                let out = f();
                best = best.min(start.elapsed().as_secs_f64());
                std::hint::black_box(out);
            }
            best
        };
        let dense_s = time_best(&|| p.schur_complement_dense().expect("dense schur"));
        let sparse_s = time_best(&|| p.schur_complement_sparse().expect("sparse schur"));
        let agree = {
            let d = p.schur_complement_dense().expect("dense schur");
            let s = p.schur_complement_sparse().expect("sparse schur");
            d.approx_eq(&s, 1e-9 * d.max_abs().max(1.0))
        };
        schur_table.row([
            n.to_string(),
            format!("{:.1}%", density * 100.0),
            format!("{:.3} ms", dense_s * 1e3),
            format!("{:.3} ms", sparse_s * 1e3),
            format!("{:.2}x", dense_s / sparse_s),
        ]);
        schur_json.push(Json::obj([
            ("n", n.into()),
            ("coupling_density", density.into()),
            ("dense_s", dense_s.into()),
            ("sparse_s", sparse_s.into()),
            ("speedup", (dense_s / sparse_s).into()),
            ("agree", agree.into()),
        ]));
    }
    println!("\nSchur complement on PDN (halves split, best of {reps}):\n");
    print!("{}", schur_table.render());

    // --- Parallel prepare: depth-4 tree, worker sweep, bit-identity.
    let prep_n = opts.pick(256, 512);
    let depth = 4usize;
    let mut rng = ChaCha8Rng::seed_from_u64(0x9EE9);
    let (a, b) = make_workload(MatrixFamily::Wishart, prep_n, &mut rng);
    let config = SolverConfig::builder()
        .stages(Stages::Multi(depth))
        .capture_trace(false)
        .finish()
        .expect("valid config");
    let x_serial = {
        let mut solver = BlockAmcSolver::from_config(
            registry.build("numeric", 0).expect("numeric"),
            config.clone(),
        );
        let mut prepared = solver.prepare(&a).expect("serial prepare");
        prepared.solve(&b).expect("solve").x
    };
    println!(
        "\nparallel prepare, {prep_n}x{prep_n} Wishart at depth {depth} \
         (host has {} worker(s); wall speedup needs a multi-core host):\n",
        amc_par::available_workers()
    );
    let mut prep_json = Vec::new();
    let mut serial_s = 0.0;
    let mut bit_identical = true;
    for workers in [1usize, 2, 4, 8] {
        let mut best = f64::INFINITY;
        let mut x = Vec::new();
        for _ in 0..reps {
            let mut solver = BlockAmcSolver::from_config(
                registry.build("numeric", 0).expect("numeric"),
                config.clone(),
            );
            let start = Instant::now();
            let mut prepared = solver.prepare_with_workers(&a, workers).expect("prepare");
            best = best.min(start.elapsed().as_secs_f64());
            x = prepared.solve(&b).expect("solve").x;
        }
        if workers == 1 {
            serial_s = best;
        }
        bit_identical &= x == x_serial;
        println!(
            "  workers {workers:>2}: {:>9.3} ms wall ({:>5.2}x vs 1)",
            best * 1e3,
            serial_s / best
        );
        prep_json.push(Json::obj([
            ("workers", workers.into()),
            ("wall_s", best.into()),
            ("speedup_vs_1", (serial_s / best).into()),
        ]));
    }
    println!(
        "  bit-identical to serial prepare: {}",
        if bit_identical { "yes" } else { "no" }
    );

    // --- Large-n scaling campaign (quick-mode guarded sizes).
    let mut scaling_json = Json::Null;
    match campaigns::simd_scaling(opts.quick).and_then(|c| {
        println!(
            "\n[{}] {} cells x {} trial(s)",
            c.name(),
            c.cell_count(),
            c.trials()
        );
        c.run()
    }) {
        Ok(report) => {
            let mut table =
                TextTable::new(["workload", "n", "engine", "ok", "median err", "mean err"]);
            for c in &report.cells {
                table.row([
                    c.workload.clone(),
                    c.n.to_string(),
                    c.engine.to_string(),
                    format!("{}/{}", c.completed, c.trials),
                    format!("{:.3e}", c.errors.median),
                    format!("{:.3e}", c.errors.mean),
                ]);
            }
            print!("{}", table.render());
            scaling_json = Json::obj([
                ("name", report.name.clone().into()),
                ("trials", report.trials.into()),
                (
                    "cells",
                    Json::Arr(
                        report
                            .cells
                            .iter()
                            .map(|c| {
                                Json::obj([
                                    ("workload", c.workload.clone().into()),
                                    ("n", c.n.into()),
                                    ("engine", c.engine.into()),
                                    ("completed", c.completed.into()),
                                    ("trials", c.trials.into()),
                                    ("err_median", c.errors.median.into()),
                                    ("err_mean", c.errors.mean.into()),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]);
        }
        Err(e) => println!("simd-scaling campaign failed: {e}"),
    }

    let json = Json::obj([
        ("bench", "simd".into()),
        ("quick", opts.quick.into()),
        ("host_workers", amc_par::available_workers().into()),
        (
            "backends",
            Json::Arr(registry.names().map(|n| n.into()).collect()),
        ),
        ("factorize_solve", Json::Arr(fs_json)),
        ("amortized_inv", Json::Arr(amortized_json)),
        ("schur_pdn", Json::Arr(schur_json)),
        (
            "parallel_prepare",
            Json::obj([
                ("n", prep_n.into()),
                ("depth", depth.into()),
                ("timings", Json::Arr(prep_json)),
                ("bit_identical", bit_identical.into()),
            ]),
        ),
        ("scaling_campaign", scaling_json),
    ]);
    match report::write_json("BENCH_simd.json", &json) {
        Ok(()) => println!("\nwrote BENCH_simd.json"),
        Err(e) => println!("\ncould not write BENCH_simd.json: {e}"),
    }
    println!(
        "-> the simd backend is pure registry data: core never names it, the \
         ladder runs it by name, and the tiled kernels win wherever the \
         trailing update dominates."
    );
}

/// Scenario campaigns: the workload registry crossed with solver grids
/// and nonideality ladders, executed by the `amc-scenario` engine and
/// written to `BENCH_scenarios.json`.
fn scenarios(opts: &RunOpts) {
    use amc_scenario::campaign::run_worker_sweep;
    use amc_scenario::{campaigns, workload};

    banner("Scenarios — declarative campaigns over the workload registry");
    let n = opts.pick(32, 64);
    let yn = |b: bool| if b { "yes" } else { "no" };

    // The registry itself: one instance per family, with measured
    // metadata.
    let mut registry_table = TextTable::new(["workload", "n", "cond est", "sym", "dom", "spd"]);
    let mut registry_json = Vec::new();
    for spec in workload::default_registry(n, 0xC0FFEE) {
        match spec.instantiate(1) {
            Ok(inst) => {
                let m = inst.meta;
                registry_table.row([
                    spec.name.clone(),
                    spec.n.to_string(),
                    format!("{:.2e}", m.cond_estimate),
                    yn(m.symmetric).to_string(),
                    yn(m.diagonally_dominant).to_string(),
                    yn(m.spd).to_string(),
                ]);
                registry_json.push(Json::obj([
                    ("name", spec.name.clone().into()),
                    ("family", spec.family.key().into()),
                    ("n", spec.n.into()),
                    ("seed", Json::Int(spec.seed as i64)),
                    ("cond_estimate", m.cond_estimate.into()),
                    ("symmetric", m.symmetric.into()),
                    ("diagonally_dominant", m.diagonally_dominant.into()),
                    ("spd", m.spd.into()),
                ]));
            }
            Err(e) => {
                registry_table.row([
                    spec.name.clone(),
                    spec.n.to_string(),
                    format!("failed: {e}"),
                ]);
                // Keep the machine-readable registry complete: a family
                // that fails to instantiate appears as an error record,
                // not as a silently missing entry.
                registry_json.push(Json::obj([
                    ("name", spec.name.clone().into()),
                    ("family", spec.family.key().into()),
                    ("n", spec.n.into()),
                    ("seed", Json::Int(spec.seed as i64)),
                    ("error", e.to_string().into()),
                ]));
            }
        }
    }
    println!("workload registry at n = {n}:\n");
    print!("{}", registry_table.render());

    let render_cells = render_campaign_cells;
    let campaign_json = campaign_report_json;

    let mut campaigns_json = Vec::new();

    // Campaigns 1, 2, and 4: depth sweep, split-rule study, and the
    // engine ladder (every shipped backend selected as EngineSpec data).
    for built in [
        campaigns::depth_sweep(opts.quick),
        campaigns::split_rule_study(opts.quick),
        campaigns::engine_ladder(opts.quick),
    ] {
        let campaign = match built {
            Ok(c) => c,
            Err(e) => {
                println!("\ncampaign failed to build: {e}");
                continue;
            }
        };
        println!(
            "\n[{}] {} cells x {} trial(s)",
            campaign.name(),
            campaign.cell_count(),
            campaign.trials()
        );
        match campaign.run() {
            Ok(report) => {
                print!("{}", render_cells(&report));
                campaigns_json.push(campaign_json(&report));
            }
            Err(e) => println!("campaign '{}' failed: {e}", campaign.name()),
        }
    }

    // Campaign 3: worker scaling with bit-identity verification.
    let mut worker_json = Json::Null;
    match campaigns::worker_scaling(opts.quick).and_then(|c| run_worker_sweep(&c, &[1, 2, 4, 8])) {
        Ok(sweep) => {
            println!(
                "\n[worker-scaling] {} cells x {} trial(s), {} host core(s)",
                sweep.report.cells.len(),
                sweep.report.trials,
                amc_par::available_workers()
            );
            print!("{}", render_cells(&sweep.report));
            let serial = sweep.timings.first().map_or(0.0, |&(_, s)| s);
            for &(workers, wall) in &sweep.timings {
                println!(
                    "  workers {workers:>2}: {:>9.3} ms wall ({:>5.2}x vs 1)",
                    wall * 1e3,
                    if wall > 0.0 { serial / wall } else { 1.0 }
                );
            }
            println!(
                "  bit-identical across worker counts: {}",
                yn(sweep.bit_identical)
            );
            worker_json = Json::obj([
                (
                    "timings",
                    Json::Arr(
                        sweep
                            .timings
                            .iter()
                            .map(|&(w, s)| Json::obj([("workers", w.into()), ("wall_s", s.into())]))
                            .collect(),
                    ),
                ),
                ("bit_identical", sweep.bit_identical.into()),
            ]);
            campaigns_json.push(campaign_json(&sweep.report));
        }
        Err(e) => println!("\nworker-scaling campaign failed: {e}"),
    }

    let json = Json::obj([
        ("bench", "scenarios".into()),
        ("quick", opts.quick.into()),
        ("host_workers", amc_par::available_workers().into()),
        ("registry", Json::Arr(registry_json)),
        ("campaigns", Json::Arr(campaigns_json)),
        ("worker_scaling", worker_json),
    ]);
    match report::write_json("BENCH_scenarios.json", &json) {
        Ok(()) => println!("\nwrote BENCH_scenarios.json"),
        Err(e) => println!("\ncould not write BENCH_scenarios.json: {e}"),
    }
    println!(
        "-> every study above is a Campaign value, not bespoke code: the \
         workload registry x solver grid x nonideality ladder executes on \
         one engine, sharded over workers with bit-identical output."
    );
}

/// Engine-backend smoke study: the registry listing plus the
/// engine-ladder campaign — every shipped backend on the same cells,
/// selected purely as `EngineSpec` data.
fn engines(opts: &RunOpts) {
    use amc_scenario::campaigns;
    use blockamc::engine::EngineRegistry;

    banner("Engines — the open backend registry and the engine ladder");
    let registry = EngineRegistry::builtin();
    println!(
        "registered backends: {}",
        registry.names().collect::<Vec<_>>().join(", ")
    );
    let campaign = match campaigns::engine_ladder(opts.quick) {
        Ok(c) => c,
        Err(e) => {
            println!("engine-ladder campaign failed to build: {e}");
            return;
        }
    };
    println!(
        "\n[{}] {} cells x {} trial(s)",
        campaign.name(),
        campaign.cell_count(),
        campaign.trials()
    );
    match campaign.run() {
        Ok(report) => {
            let mut table = TextTable::new([
                "workload",
                "solver",
                "engine",
                "nonideality",
                "ok",
                "median err",
                "mean err",
                "analog t/solve",
            ]);
            for c in &report.cells {
                table.row([
                    c.workload.clone(),
                    c.solver.clone(),
                    c.engine.to_string(),
                    c.nonideality.to_string(),
                    format!("{}/{}", c.completed, c.trials),
                    format!("{:.3e}", c.errors.median),
                    format!("{:.3e}", c.errors.mean),
                    if c.analog_time_per_solve_s > 0.0 {
                        format!("{:.2e} s", c.analog_time_per_solve_s)
                    } else {
                        "-".to_string()
                    },
                ]);
            }
            print!("{}", table.render());
        }
        Err(e) => println!("engine-ladder campaign failed: {e}"),
    }
    println!(
        "-> every rung above is an EngineSel — an inline EngineSpec or a \
         registry name — resolved at trial time behind Box<dyn AmcEngine>; \
         adding a backend is a registry entry, not a code path."
    );
}

/// Parallel execution sweep: wall-clock of the sharded batch solver
/// across worker counts × batch sizes × depths, written to
/// `BENCH_parallel.json` to seed the performance trajectory.
fn parallel(opts: &RunOpts) {
    use amc_circuit::opamp::OpAmpSpec;
    use blockamc::batch;
    use std::time::Instant;

    banner("Parallel — sharded batch solving across macro replicas");
    let n = opts.pick(32, 64);
    let host_workers = amc_par::available_workers();
    let worker_counts: &[usize] = &[1, 2, 4, 8];
    let batch_sizes: &[usize] = opts.pick(&[16, 64][..], &[16, 64, 256][..]);
    let depths: &[(&str, Stages)] = &[("one", Stages::One), ("two", Stages::Two)];
    let reps = opts.trials.clamp(1, 3);
    let config = CircuitEngineConfig::paper_variation();
    println!("{n}x{n} Wishart, circuit engine with paper variation, {host_workers} host core(s)\n");

    let mut records = Vec::new();
    for &(depth_label, stages) in depths {
        for &k in batch_sizes {
            let mut rng = ChaCha8Rng::seed_from_u64(0x9A7 + k as u64);
            let (a, _) = make_workload(MatrixFamily::Wishart, n, &mut rng);
            let batch: Vec<Vec<f64>> = (0..k)
                .map(|_| amc_linalg::generate::random_vector(n, &mut rng))
                .collect();
            println!("[{depth_label}-stage, {k} RHS]");
            let mut serial_s = 0.0;
            for &workers in worker_counts {
                let mut best = f64::INFINITY;
                let mut model_s = 0.0;
                for _ in 0..reps {
                    let mut solver = BlockAmcSolver::new(CircuitEngine::new(config, 1), stages);
                    let start = Instant::now();
                    let out = batch::solve_batch_parallel(
                        &mut solver,
                        &a,
                        &batch,
                        &OpAmpSpec::ideal(),
                        0.0,
                        workers,
                    )
                    .expect("parallel batch");
                    best = best.min(start.elapsed().as_secs_f64());
                    model_s = out.batch_time_parallel_s(workers);
                }
                if workers == 1 {
                    serial_s = best;
                }
                let speedup = serial_s / best;
                println!(
                    "  workers {workers:>2}: {:>9.3} ms wall ({speedup:>5.2}x vs 1), \
                     model {:.3e} s analog",
                    best * 1e3,
                    model_s
                );
                records.push(Json::obj([
                    ("depth", depth_label.into()),
                    ("n", n.into()),
                    ("batch", k.into()),
                    ("workers", workers.into()),
                    ("wall_s", best.into()),
                    ("speedup_vs_1", speedup.into()),
                    ("model_analog_s", model_s.into()),
                ]));
            }
        }
    }

    let record_count = records.len();
    let json = Json::obj([
        ("bench", "parallel_batch".into()),
        ("host_workers", host_workers.into()),
        ("engine", "circuit/paper_variation".into()),
        ("records", Json::Arr(records)),
    ]);
    match report::write_json("BENCH_parallel.json", &json) {
        Ok(()) => println!("\nwrote BENCH_parallel.json ({record_count} records)"),
        Err(e) => println!("\ncould not write BENCH_parallel.json: {e}"),
    }
    println!(
        "-> sharding is bit-identical to serial at every worker count; wall-clock \
         gains track the host core count while the analog-time model shows the \
         multi-macro architectural speedup."
    );
}

/// Monte-Carlo yield: fraction of manufactured parts (variation draws)
/// meeting an accuracy spec, per architecture.
fn yield_report(opts: &RunOpts) {
    use blockamc::engine::EngineSpec;
    use blockamc::montecarlo::yield_analysis;
    use blockamc::solver::SolverConfig;

    banner("Yield — parts meeting an accuracy spec across variation draws");
    let n = 64;
    let trials = opts.trials.max(20);
    let mut rng = ChaCha8Rng::seed_from_u64(0x41E1D);
    let (a, b) = make_workload(MatrixFamily::Wishart, n, &mut rng);
    println!("{n}x{n} Wishart, {trials} variation draws per architecture\n");
    let mut table = TextTable::new(["spec", "Original AMC", "One-stage", "Two-stage"]);
    for spec in [0.05, 0.08, 0.12, 0.20] {
        let mut cols = vec![format!("{spec:.2}")];
        for stages in [Stages::Original, Stages::One, Stages::Two] {
            let solver = SolverConfig::builder()
                .stages(stages)
                .finish()
                .expect("valid architecture");
            match yield_analysis(
                &a,
                &b,
                &solver,
                &EngineSpec::Circuit(CircuitEngineConfig::paper_variation()),
                spec,
                trials,
                0x41E1D,
            ) {
                Ok(r) => cols.push(format!("{:.0}%", 100.0 * r.yield_fraction())),
                Err(e) => cols.push(format!("failed: {e}")),
            }
        }
        table.row(cols);
    }
    print!("{}", table.render());
    println!(
        "\n-> at a given spec, BlockAMC's lower error floor converts directly \
         into manufacturing yield."
    );
}

/// Scaling/feasibility table (extends Fig. 10 across problem sizes and
/// encodes the paper's 256-cell manufacturability ceiling).
fn scaling() {
    banner("Scaling — area/power/feasibility vs problem size");
    let params = amc_arch::params::ComponentParams::calibrated_45nm();
    match amc_arch::scaling::scaling_table(&[64, 128, 256, 512, 1024], &params) {
        Ok(t) => print!("{}", amc_arch::scaling::render_scaling_table(&t)),
        Err(e) => println!("scaling failed: {e}"),
    }
    println!(
        "\n(feasible = largest required array fits within the paper's \
         256x256 manufacturability ceiling)"
    );
}

/// Design-choice ablations: variation-model interpretation, conductance
/// quantization depth, and partitioning depth.
fn ablation(opts: &RunOpts) {
    use amc_device::mapping::MappingConfig;
    use amc_device::quant::Quantizer;
    use blockamc::engine::NumericEngine;

    banner("Ablation A — variation-model interpretation (n sweep, one-stage)");
    println!(
        "the paper says sigma = 0.05*G0; full-scale-additive reading vs \
         per-device-relative reading:"
    );
    for (label, config) in [
        (
            "relative 5% (reproduction)",
            CircuitEngineConfig::paper_variation(),
        ),
        (
            "additive 0.05*G0 (literal)",
            CircuitEngineConfig::absolute_variation(),
        ),
    ] {
        let solvers = presets::original_vs_one_stage(config);
        let sizes: Vec<usize> = opts.sizes.iter().copied().filter(|&n| n <= 128).collect();
        let points = accuracy_sweep(
            MatrixFamily::Wishart,
            &sizes,
            opts.trials.min(15),
            &solvers,
            0xAB1,
        );
        print!(
            "{}",
            render_sweep(&format!("  [{label}]"), &solvers, &points)
        );
    }
    println!(
        "-> the additive reading diverges with n (noise power ~ n * sigma^2 \
         overwhelms the spectrum), while the relative reading reproduces \
         the paper's 0.05-0.4 error range; see DESIGN.md."
    );

    banner("Ablation B — conductance quantization levels (one-stage, n = 64)");
    let n = 64;
    let mut rng = ChaCha8Rng::seed_from_u64(0xAB2);
    let (a, b) = make_workload(MatrixFamily::Wishart, n, &mut rng);
    let x_ref = lu::solve(&a, &b).expect("reference");
    for levels in [8u32, 16, 32, 64, 256, 1024] {
        let mut mapping = MappingConfig::paper_default();
        mapping.quantizer =
            Some(Quantizer::new(mapping.g_min, mapping.g0, levels).expect("valid quantizer"));
        let config = CircuitEngineConfig {
            mapping,
            variation: amc_device::variation::VariationModel::None,
            sim: amc_circuit::sim::SimConfig::ideal(),
        };
        let mut solver = BlockAmcSolver::new(CircuitEngine::new(config, 1), Stages::One);
        match solver.solve(&a, &b) {
            Ok(r) => println!(
                "  {levels:>5} levels: rel. error {:.3e}",
                metrics::relative_error(&x_ref, &r.x)
            ),
            Err(e) => println!("  {levels:>5} levels: failed ({e})"),
        }
    }
    println!("-> ~64 analog levels suffice to reach the variation-limited floor.");

    banner("Ablation C — partitioning depth (numeric engine, n = 64)");
    for depth in 0..=4usize {
        // Depth 0 is the single-array baseline (`Multi(0)` is rejected
        // by config validation).
        let stages = if depth == 0 {
            Stages::Original
        } else {
            Stages::Multi(depth)
        };
        let mut solver = BlockAmcSolver::new(NumericEngine::new(), stages);
        match solver.solve(&a, &b) {
            Ok(r) => println!(
                "  depth {depth}: rel. error {:.3e}, {:>3} arrays programmed, {} INV + {} MVM ops",
                metrics::relative_error(&x_ref, &r.x),
                r.stats_delta.program_ops,
                r.stats_delta.inv_ops,
                r.stats_delta.mvm_ops,
            ),
            Err(e) => println!("  depth {depth}: failed ({e})"),
        }
    }
    println!("-> the algorithm is exact at every depth; hardware cost grows with depth.");

    banner("Ablation D — raw-Toeplitz condition guard (the Toeplitz flake fix)");
    let n = 32;
    let trials = opts.trials.clamp(8, 25) as u64;
    // A deliberately tight guard so the resample mechanism visibly
    // bites at ablation trial counts; the harness production guard
    // (RAW_TOEPLITZ_MAX_COND) only trims the catastrophic tail.
    let demo_guard = 2e2;
    println!(
        "worst condition estimate and one-stage error over {trials} draws, \
         unguarded vs guarded (demo max_cond = {demo_guard:.0e}; the harness \
         uses {RAW_TOEPLITZ_MAX_COND:.0e}):"
    );
    for (label, guarded) in [("random_toeplitz_raw", false), ("guarded resample", true)] {
        let mut worst_cond = 0.0_f64;
        let mut worst_err = 0.0_f64;
        let mut failures = 0usize;
        for t in 0..trials {
            let mut rng = ChaCha8Rng::seed_from_u64(0xAB4_0000 + t);
            let a = if guarded {
                amc_linalg::generate::random_toeplitz_conditioned(n, demo_guard, &mut rng)
            } else {
                amc_linalg::generate::random_toeplitz_raw(n, &mut rng)
            }
            .expect("n > 0");
            let b = amc_linalg::generate::random_vector(n, &mut rng);
            let cond = match amc_linalg::lu::LuFactor::new(&a) {
                Ok(lu) => lu.cond_estimate(a.norm_one()),
                Err(_) => f64::INFINITY,
            };
            worst_cond = worst_cond.max(cond);
            let solve = || -> Option<f64> {
                let x_ref = lu::solve(&a, &b).ok()?;
                let mut solver = BlockAmcSolver::new(
                    CircuitEngine::new(CircuitEngineConfig::paper_variation(), 0xD + t),
                    Stages::One,
                );
                let r = solver.solve(&a, &b).ok()?;
                let e = metrics::relative_error(&x_ref, &r.x);
                e.is_finite().then_some(e)
            };
            match solve() {
                Some(e) => worst_err = worst_err.max(e),
                None => failures += 1,
            }
        }
        println!(
            "  {label:<22} worst cond {worst_cond:>9.2e}, worst rel. error \
             {worst_err:>9.2e}, {failures} failed solve(s)"
        );
    }
    println!(
        "-> the seeded resample guard bounds the tail: no more catastrophically \
         conditioned draws sinking a sweep, with the stream still deterministic."
    );
}

/// Transient settling validation: waveform-measured settle times vs the
/// eigenvalue-based estimates, original vs BlockAMC block sizes.
fn transient() {
    use amc_circuit::opamp::OpAmpSpec;
    use amc_circuit::timing;
    use amc_circuit::transient::{simulate_inv_settling, TransientOptions};

    banner("Transient — INV settling waveforms vs eigenvalue estimates");
    let spec = OpAmpSpec::ideal();
    for n in [8usize, 16, 32] {
        let mut rng = ChaCha8Rng::seed_from_u64(0x7100 + n as u64);
        let (a, b) = make_workload(MatrixFamily::Wishart, n, &mut rng);
        let g_hat = a.scaled(1.0 / a.max_abs());
        let mut opts = TransientOptions::for_opamp(&spec);
        opts.duration_s *= 10.0;
        match (
            simulate_inv_settling(&g_hat, &b, &spec, &opts),
            timing::inv_settle_time(&g_hat, &spec, opts.epsilon),
        ) {
            (Ok(r), Ok(est)) => {
                let measured = r
                    .settle_time_s
                    .map(|t| format!("{:.1} ns", t * 1e9))
                    .unwrap_or_else(|| "did not settle".to_string());
                println!(
                    "  n={n:>3}: measured {measured:>12}, estimated {:.1} ns",
                    est * 1e9
                );
            }
            (Err(e), _) | (_, Err(e)) => println!("  n={n:>3}: failed ({e})"),
        }
    }
    println!(
        "-> settle time tracks 1/lambda_min: smaller, better-conditioned \
         BlockAMC blocks settle faster, partially offsetting the 5-step cascade."
    );
}

/// Fig. 6 — ideal mapping: per-step traces, final comparison at the
/// showcase size, and the relative-error-vs-size sweep.
fn fig6(opts: &RunOpts) {
    banner("Fig. 6 — ideal mapping (finite-gain op-amps, no variation)");
    let n = opts.showcase_n;
    let config = CircuitEngineConfig::ideal_mapping();
    let mut rng = ChaCha8Rng::seed_from_u64(0xF166);
    let (a, b) = make_workload(MatrixFamily::Wishart, n, &mut rng);

    // (a) per-step BlockAMC vs numerical.
    println!("(a) per-step relative error, {n}x{n} Wishart, BlockAMC vs numerical:");
    match step_trace_comparison(&a, &b, config, 1) {
        Ok(steps) => {
            for (name, err) in steps {
                println!("    {name:<22} rel. error {err:.3e}");
            }
        }
        Err(e) => println!("    trace failed: {e}"),
    }

    // (b) final solutions of the three solvers.
    println!("\n(b) final solution error vs numerical, {n}x{n} Wishart:");
    let x_ref = lu::solve(&a, &b).expect("reference solve");
    for (label, stages) in [
        ("Original AMC", Stages::Original),
        ("BlockAMC", Stages::One),
    ] {
        let mut solver = BlockAmcSolver::new(CircuitEngine::new(config, 2), stages);
        match solver.solve(&a, &b) {
            Ok(r) => println!(
                "    {label:<14} rel. error {:.3e}",
                metrics::relative_error(&x_ref, &r.x)
            ),
            Err(e) => println!("    {label:<14} failed: {e}"),
        }
    }

    // (c) error vs size sweep.
    let solvers = presets::original_vs_one_stage(config);
    let points = accuracy_sweep(
        MatrixFamily::Wishart,
        &opts.sizes,
        opts.trials,
        &solvers,
        0x66,
    );
    println!();
    print!(
        "{}",
        render_sweep(
            "(c) relative error vs Wishart size (ideal mapping)",
            &solvers,
            &points
        )
    );
    shape_check(&points, "fig6c");
}

/// Fig. 7 — device variation (σ = 0.05·G₀) sweeps for both families.
fn fig7(opts: &RunOpts) {
    banner("Fig. 7 — conductance variation σ = 0.05·G0");
    let config = CircuitEngineConfig::paper_variation();
    for (family, tag) in [
        (MatrixFamily::Wishart, "(a)"),
        (MatrixFamily::Toeplitz, "(b)"),
    ] {
        let solvers = presets::original_vs_one_stage(config);
        let points = accuracy_sweep(family, &opts.sizes, opts.trials, &solvers, 0x77);
        print!(
            "{}",
            render_sweep(
                &format!("{tag} relative error vs {} size, s = 0.05", family.label()),
                &solvers,
                &points
            )
        );
        shape_check(&points, &format!("fig7{}", family.label()));
        println!();
    }
}

/// Fig. 8 — the two-stage solver: inner INV traces at the showcase size
/// and the error-vs-size sweep against the original AMC.
fn fig8(opts: &RunOpts) {
    banner("Fig. 8 — two-stage BlockAMC, σ = 0.05·G0");
    let n = opts.showcase_n;
    let config = CircuitEngineConfig::paper_variation();
    let mut rng = ChaCha8Rng::seed_from_u64(0xF168);
    let (a, b) = make_workload(MatrixFamily::Wishart, n, &mut rng);
    let x_ref = lu::solve(&a, &b).expect("reference solve");

    println!("(a,b) inner second-stage INV traces, {n}x{n} Wishart:");
    let mut engine = CircuitEngine::new(config, 3);
    match blockamc::two_stage::prepare(&mut engine, &a) {
        Ok(mut prep) => {
            match blockamc::two_stage::solve(
                &mut engine,
                &mut prep,
                &b,
                &blockamc::converter::IoConfig::ideal(),
            ) {
                Ok(sol) => {
                    for (block, trace) in &sol.inner_traces {
                        println!("    inner macro {block}: {} steps executed", trace.len());
                    }
                    println!(
                        "\n(c) final two-stage solution rel. error: {:.3e}",
                        metrics::relative_error(&x_ref, &sol.x)
                    );
                }
                Err(e) => println!("    two-stage solve failed: {e}"),
            }
        }
        Err(e) => println!("    two-stage prepare failed: {e}"),
    }

    let solvers = presets::original_vs_two_stage(config);
    let points = accuracy_sweep(
        MatrixFamily::Wishart,
        &opts.sizes,
        opts.trials,
        &solvers,
        0x88,
    );
    println!();
    print!(
        "{}",
        render_sweep(
            "(d) relative error vs Wishart size, original vs two-stage",
            &solvers,
            &points
        )
    );
    shape_check(&points, "fig8d");
}

/// Fig. 9 — variation + interconnect resistance (1 Ω/segment).
fn fig9(opts: &RunOpts) {
    banner("Fig. 9 — variation σ = 0.05·G0 + interconnect 1 Ω/segment");
    let config = CircuitEngineConfig::paper_full();
    for (family, tag) in [
        (MatrixFamily::Wishart, "(a)"),
        (MatrixFamily::Toeplitz, "(b)"),
    ] {
        let solvers = presets::all_three(config);
        let points = accuracy_sweep(family, &opts.sizes, opts.trials, &solvers, 0x99);
        print!(
            "{}",
            render_sweep(
                &format!(
                    "{tag} relative error vs {} size, s = 0.05 + wire R",
                    family.label()
                ),
                &solvers,
                &points
            )
        );
        shape_check(&points, &format!("fig9{}", family.label()));
        println!();
    }
}

/// Fig. 10 — area and power breakdowns.
fn fig10() {
    banner("Fig. 10 — area and power of the three solvers (n = 512)");
    let params = amc_arch::params::ComponentParams::calibrated_45nm();
    match amc_arch::report::Fig10Report::compute(512, &params) {
        Ok(r) => print!("{}", r.render()),
        Err(e) => println!("fig10 failed: {e}"),
    }
}

/// The abstract's headline comparison.
fn headline() {
    banner("Headline (abstract)");
    let params = amc_arch::params::ComponentParams::calibrated_45nm();
    match amc_arch::report::headline(&params) {
        Ok(h) => println!("{h}"),
        Err(e) => println!("headline failed: {e}"),
    }
}

/// Lifetime reliability study: streaming drift/fault campaigns under
/// the repair-policy ladder, with worker-sweep bit-identity and the
/// policy frontier (accuracy × energy × availability) as the headline.
fn lifetime(opts: &RunOpts) {
    use amc_device::drift::DriftModel;
    use amc_device::faults::FaultModel;
    use amc_scenario::lifetime::{run_lifetime_worker_sweep, LifetimeCampaign, RepairPolicy};
    use amc_scenario::workload::{WorkloadFamily, WorkloadSpec};
    use blockamc::aging::AgingModel;

    banner("Lifetime — drift, faults, and the repair-policy frontier");

    // Accelerated aging so a short trace spans the interesting regime:
    // strong power-law drift plus a small stuck-at rate per tick.
    let model = AgingModel {
        drift: DriftModel {
            nu: 0.05,
            nu_sigma: 0.01,
            t0_s: 1.0,
        },
        faults: FaultModel {
            p_stuck_on: 1e-4,
            p_stuck_off: 1e-4,
            g_on: 1.0,
            g_off: 0.0,
        },
        tick_s: 100.0,
        ..AgingModel::typical_rram()
    };
    let ticks = opts.pick(8, 30);
    let campaign = LifetimeCampaign::builder("policy-frontier")
        .workload(WorkloadSpec::new(
            "wishart",
            WorkloadFamily::Wishart,
            opts.pick(12, 24),
            1,
        ))
        .workload(WorkloadSpec::new(
            "poisson2d",
            WorkloadFamily::Poisson2d,
            opts.pick(16, 36),
            2,
        ))
        .policy("never", RepairPolicy::Never)
        .policy("always", RepairPolicy::Always)
        .policy(
            "threshold",
            RepairPolicy::ResidualThreshold {
                refine_above: 1e-6,
                reprogram_above: 0.4,
            },
        )
        .policy(
            "budgeted",
            RepairPolicy::Budgeted {
                energy_budget_j: opts.pick(3e-9, 1e-7),
                reprogram_above: 1e-2,
                arrays_per_repair: 2,
            },
        )
        .model(model)
        .ticks(ticks)
        .rhs_per_tick(opts.pick(1, 2))
        .seed(opts.seed)
        .finish();
    let campaign = match campaign {
        Ok(c) => c,
        Err(e) => {
            println!("lifetime campaign failed to build: {e}");
            return;
        }
    };

    println!(
        "[{}] {} workload(s) x {} policies, {} tick(s), {} host core(s)",
        campaign.name(),
        campaign.workloads().len(),
        campaign.policies().len(),
        campaign.ticks(),
        amc_par::available_workers()
    );
    let sweep = match run_lifetime_worker_sweep(&campaign, &[1, 2, 4]) {
        Ok(s) => s,
        Err(e) => {
            println!("lifetime campaign failed: {e}");
            return;
        }
    };
    let report = &sweep.report;

    let mut table = TextTable::new([
        "workload",
        "n",
        "policy",
        "mean res",
        "worst res",
        "energy J",
        "avail",
        "repairs",
        "refines",
        "stuck",
    ]);
    for c in &report.cells {
        table.row([
            c.workload.clone(),
            c.n.to_string(),
            c.policy.clone(),
            format!("{:.3e}", c.summary.mean_accuracy),
            format!("{:.3e}", c.summary.worst_accuracy),
            format!("{:.3e}", c.summary.total_energy_j),
            format!("{:.3}", c.summary.mean_availability),
            c.summary.total_repairs.to_string(),
            c.summary.refine_ticks.to_string(),
            c.stuck_cells.to_string(),
        ]);
    }
    print!("{}", table.render());

    let yn = |b: bool| if b { "yes" } else { "no" };
    let serial = sweep.timings.first().map_or(0.0, |&(_, s)| s);
    for &(workers, wall) in &sweep.timings {
        println!(
            "  workers {workers:>2}: {:>9.3} ms wall ({:>5.2}x vs 1)",
            wall * 1e3,
            if wall > 0.0 { serial / wall } else { 1.0 }
        );
    }
    println!(
        "  bit-identical across worker counts: {}",
        yn(sweep.bit_identical)
    );

    // The frontier claim, checked per workload: a reactive policy
    // (threshold or budgeted) must dominate Never on accuracy and
    // Always on energy.
    let mut frontier_holds = true;
    let policy_cell = |workload: &str, policy: &str| {
        report
            .cells
            .iter()
            .find(|c| c.workload == workload && c.policy == policy)
    };
    for w in campaign.workloads() {
        let (Some(never), Some(always), Some(threshold), Some(budgeted)) = (
            policy_cell(&w.name, "never"),
            policy_cell(&w.name, "always"),
            policy_cell(&w.name, "threshold"),
            policy_cell(&w.name, "budgeted"),
        ) else {
            continue;
        };
        // A reactive cell dominates when it is strictly more accurate
        // than Never AND strictly cheaper than Always.
        let dominates = |c: &amc_scenario::lifetime::LifetimeCellRecord| {
            c.summary.mean_accuracy < never.summary.mean_accuracy
                && c.summary.total_energy_j < always.summary.total_energy_j
        };
        let threshold_dominates = dominates(threshold);
        let budgeted_dominates = dominates(budgeted);
        frontier_holds &= threshold_dominates || budgeted_dominates;
        println!(
            "  [{}] dominates never+always — threshold: {}, budgeted: {} \
             (anchors: never {:.3e} res / always {:.3e} J)",
            w.name,
            yn(threshold_dominates),
            yn(budgeted_dominates),
            never.summary.mean_accuracy,
            always.summary.total_energy_j,
        );
    }

    let cells_json: Vec<Json> = report
        .cells
        .iter()
        .map(|c| {
            Json::obj([
                ("workload", c.workload.clone().into()),
                ("family", c.family.clone().into()),
                ("n", c.n.into()),
                ("policy", c.policy.clone().into()),
                ("arrays", c.arrays.into()),
                ("stuck_cells", c.stuck_cells.into()),
                ("mean_accuracy", c.summary.mean_accuracy.into()),
                ("worst_accuracy", c.summary.worst_accuracy.into()),
                ("total_energy_j", c.summary.total_energy_j.into()),
                ("mean_availability", c.summary.mean_availability.into()),
                ("total_repairs", Json::Int(c.summary.total_repairs as i64)),
                ("refine_ticks", Json::Int(c.summary.refine_ticks as i64)),
                ("iterations_saved", Json::Int(c.summary.iterations_saved)),
                (
                    "health_trace",
                    Json::Arr(c.ticks.iter().map(|t| t.health.into()).collect()),
                ),
                (
                    "actions",
                    Json::Arr(
                        c.ticks
                            .iter()
                            .map(|t| t.action.label().to_string().into())
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    let json = Json::obj([
        ("bench", "lifetime".into()),
        ("quick", opts.quick.into()),
        ("host_workers", amc_par::available_workers().into()),
        ("ticks", report.ticks.into()),
        ("rhs_per_tick", report.rhs_per_tick.into()),
        ("seed", Json::Int(opts.seed as i64)),
        ("bit_identical", sweep.bit_identical.into()),
        ("frontier_holds", frontier_holds.into()),
        (
            "timings",
            Json::Arr(
                sweep
                    .timings
                    .iter()
                    .map(|&(w, s)| Json::obj([("workers", w.into()), ("wall_s", s.into())]))
                    .collect(),
            ),
        ),
        ("cells", Json::Arr(cells_json)),
    ]);
    match report::write_json("BENCH_lifetime.json", &json) {
        Ok(()) => println!("\nwrote BENCH_lifetime.json"),
        Err(e) => println!("\ncould not write BENCH_lifetime.json: {e}"),
    }
    println!(
        "-> lifetime is a streaming campaign over aging solvers: drift and \
         stuck-at faults accumulate per tick, the repair scheduler chooses \
         serve/refine/reprogram, and the reactive policies sit on the \
         accuracy x energy frontier between Never and Always."
    );
}

fn banner(title: &str) {
    println!("\n=== {title} ===");
}

/// The shared per-cell text table of campaign reports — `scenarios` and
/// `run` render through the same function, so a file-loaded campaign's
/// output is comparable line-for-line with its in-code twin.
fn render_campaign_cells(report: &amc_scenario::CampaignReport) -> String {
    let mut t = TextTable::new([
        "workload",
        "solver",
        "engine",
        "nonideality",
        "ok",
        "median err",
        "mean err",
        "arrays",
        "model lat",
    ]);
    for c in &report.cells {
        t.row([
            c.workload.clone(),
            c.solver.clone(),
            c.engine.to_string(),
            c.nonideality.to_string(),
            format!("{}/{}", c.completed, c.trials),
            format!("{:.3e}", c.errors.median),
            format!("{:.3e}", c.errors.mean),
            c.program_ops.to_string(),
            c.model_latency_s
                .map(|t| format!("{:.1} us", t * 1e6))
                .unwrap_or_else(|| "-".to_string()),
        ]);
    }
    t.render()
}

/// The shared machine-readable form of a campaign report (one entry of
/// `BENCH_scenarios.json`'s `campaigns` array, and the whole body of
/// `repro run`'s artifact).
fn campaign_report_json(report: &amc_scenario::CampaignReport) -> Json {
    Json::obj([
        ("name", report.name.clone().into()),
        ("trials", report.trials.into()),
        ("rhs_per_trial", report.rhs_per_trial.into()),
        (
            "cells",
            Json::Arr(
                report
                    .cells
                    .iter()
                    .map(|c| {
                        Json::obj([
                            ("workload", c.workload.clone().into()),
                            ("family", c.family.into()),
                            ("n", c.n.into()),
                            ("solver", c.solver.clone().into()),
                            ("engine", c.engine.into()),
                            ("nonideality", c.nonideality.into()),
                            ("trials", c.trials.into()),
                            ("completed", c.completed.into()),
                            ("err_mean", c.errors.mean.into()),
                            ("err_median", c.errors.median.into()),
                            ("err_max", c.errors.max.into()),
                            ("program_ops", c.program_ops.into()),
                            ("inv_ops", c.inv_ops.into()),
                            ("mvm_ops", c.mvm_ops.into()),
                            ("analog_time_per_solve_s", c.analog_time_per_solve_s.into()),
                            (
                                "analog_energy_per_solve_j",
                                c.analog_energy_per_solve_j.into(),
                            ),
                            ("model_latency_s", c.model_latency_s.into()),
                            ("cond_estimate", c.meta.cond_estimate.into()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Prints the qualitative claim check for a two-or-more-solver sweep:
/// the last solver column (a BlockAMC variant) should beat the first
/// (the original AMC) at the largest sizes.
fn shape_check(points: &[amc_bench::SweepPoint], tag: &str) {
    if let Some(last) = points.last() {
        if last.stats.len() >= 2 {
            let orig = last.stats.first().expect("nonempty").median;
            let block = last.stats.last().expect("nonempty").median;
            let verdict = if block <= orig { "OK" } else { "MISS" };
            println!(
                "[shape {tag}] at n={}: original {:.4} vs BlockAMC {:.4} -> {verdict}",
                last.n, orig, block
            );
        }
    }
}

//! Shared experiment harness for the BlockAMC reproduction.
//!
//! Both the `repro` binary (which regenerates every figure of the paper)
//! and the criterion benches use the sweep machinery in this crate. All
//! experiments are seeded deterministically: a `(figure, family, size,
//! trial)` tuple always produces the same matrices, input vectors, and
//! variation draws.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use amc_linalg::{generate, lu, metrics, Matrix};
use blockamc::engine::{CircuitEngine, CircuitEngineConfig};
use blockamc::solver::{BlockAmcSolver, Stages};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The two benchmark matrix families of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MatrixFamily {
    /// Wishart matrices `A = XᵀX/m` (paper eq. 4).
    Wishart,
    /// Random diagonally dominant Toeplitz matrices (paper eq. 5).
    Toeplitz,
    /// Raw (non-symmetric, ill-conditioned) random Toeplitz behind the
    /// seeded condition guard
    /// [`amc_linalg::generate::random_toeplitz_conditioned`] — the
    /// paper's literal eq. 5 family without its occasional
    /// catastrophically conditioned draws.
    ToeplitzRaw,
}

impl MatrixFamily {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            MatrixFamily::Wishart => "Wishart",
            MatrixFamily::Toeplitz => "Toeplitz",
            MatrixFamily::ToeplitzRaw => "raw Toeplitz",
        }
    }
}

/// Condition-estimate ceiling the harness applies to raw Toeplitz draws
/// — the workspace default shared with the scenario registry.
pub const RAW_TOEPLITZ_MAX_COND: f64 = generate::DEFAULT_TOEPLITZ_MAX_COND;

/// Generates one workload instance: a matrix of the family and a random
/// right-hand side.
///
/// # Panics
///
/// Panics if `n == 0` (the generators reject it); harness sizes start
/// at 8.
pub fn make_workload<R: Rng + ?Sized>(
    family: MatrixFamily,
    n: usize,
    rng: &mut R,
) -> (Matrix, Vec<f64>) {
    let a = match family {
        MatrixFamily::Wishart => generate::wishart_default(n, rng).expect("n > 0"),
        // SPD autocorrelation Toeplitz — the paper's cyclic-convolution /
        // DFT context. Conditioning grows with n toward the symbol's
        // max/min ratio, producing the error growth of Fig. 7(b), and SPD
        // eigenvalue interlacing is what lets BlockAMC's half-size blocks
        // beat the full matrix.
        MatrixFamily::Toeplitz => generate::random_spd_toeplitz(n, 8, 0.02, rng).expect("n > 0"),
        // Ill-conditioned but guarded: a seeded resample keeps the
        // condition estimate under RAW_TOEPLITZ_MAX_COND, so sweeps over
        // this family cannot be sunk by a single near-singular draw.
        MatrixFamily::ToeplitzRaw => {
            generate::random_toeplitz_conditioned(n, RAW_TOEPLITZ_MAX_COND, rng).expect("n > 0")
        }
    };
    let b = generate::random_vector(n, rng);
    (a, b)
}

/// The matrix sizes of the paper's sweeps: 8×8 to 512×512.
pub const PAPER_SIZES: [usize; 7] = [8, 16, 32, 64, 128, 256, 512];

/// Reduced sizes for quick runs (`repro --quick`).
pub const QUICK_SIZES: [usize; 4] = [8, 16, 32, 64];

/// Number of Monte-Carlo trials per size in the paper ("40 random
/// simulations were carried out for each matrix size").
pub const PAPER_TRIALS: usize = 40;

/// One measured point of an accuracy sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Matrix size.
    pub n: usize,
    /// Error statistics per compared solver, in the order given to
    /// [`accuracy_sweep`].
    pub stats: Vec<metrics::ErrorStats>,
}

/// A solver variant compared in a sweep.
#[derive(Debug, Clone, Copy)]
pub struct SweepSolver {
    /// Column label.
    pub label: &'static str,
    /// Architecture.
    pub stages: Stages,
    /// Analog configuration.
    pub config: CircuitEngineConfig,
}

/// Runs the relative-error metric of one solver on one workload.
///
/// Returns the paper's relative error (eq. 6) of the analog solution
/// against the exact LU reference, or `None` if the solve failed (e.g. a
/// singular Schur complement under extreme variation — counted and
/// reported by the harness rather than aborting the sweep).
pub fn run_trial(
    a: &Matrix,
    b: &[f64],
    x_ref: &[f64],
    solver: &SweepSolver,
    engine_seed: u64,
) -> Option<f64> {
    let engine = CircuitEngine::new(solver.config, engine_seed);
    let mut facade = BlockAmcSolver::new(engine, solver.stages);
    let report = facade.solve(a, b).ok()?;
    Some(metrics::relative_error(x_ref, &report.x))
}

/// Runs a full accuracy sweep: for every size, `trials` Monte-Carlo
/// repetitions of every solver on the *same* workload draws.
///
/// `base_seed` separates figures from one another.
pub fn accuracy_sweep(
    family: MatrixFamily,
    sizes: &[usize],
    trials: usize,
    solvers: &[SweepSolver],
    base_seed: u64,
) -> Vec<SweepPoint> {
    sizes
        .iter()
        .map(|&n| {
            let mut per_solver: Vec<Vec<f64>> = vec![Vec::new(); solvers.len()];
            for trial in 0..trials {
                let seed = base_seed
                    .wrapping_mul(0x9e37_79b9)
                    .wrapping_add((n as u64) << 20)
                    .wrapping_add(trial as u64);
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                let (a, b) = make_workload(family, n, &mut rng);
                let Ok(x_ref) = lu::solve(&a, &b) else {
                    continue;
                };
                for (k, solver) in solvers.iter().enumerate() {
                    if let Some(err) =
                        run_trial(&a, &b, &x_ref, solver, seed.wrapping_add(1 + k as u64))
                    {
                        if err.is_finite() {
                            per_solver[k].push(err);
                        }
                    }
                }
            }
            SweepPoint {
                n,
                stats: per_solver
                    .iter()
                    .map(|errs| metrics::ErrorStats::from_samples(errs))
                    .collect(),
            }
        })
        .collect()
}

/// Renders a sweep as an aligned text table (mean ± std per solver).
pub fn render_sweep(title: &str, solvers: &[SweepSolver], points: &[SweepPoint]) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str(&format!("{:>9}", "size"));
    for s in solvers {
        out.push_str(&format!(" {:>24}", s.label));
    }
    out.push('\n');
    for p in points {
        out.push_str(&format!("{:>4}x{:<4}", p.n, p.n));
        for st in &p.stats {
            // Median first (robust to catastrophically conditioned draws),
            // mean in parentheses for comparison with the paper's curves.
            out.push_str(&format!(" {:>11.4} (mean {:>9.4})", st.median, st.mean));
        }
        out.push('\n');
    }
    out
}

pub mod report;

/// Standard solver pairs used by the figures.
pub mod presets {
    use super::*;

    /// Original AMC vs one-stage BlockAMC at the given analog config.
    pub fn original_vs_one_stage(config: CircuitEngineConfig) -> [SweepSolver; 2] {
        [
            SweepSolver {
                label: "Original AMC",
                stages: Stages::Original,
                config,
            },
            SweepSolver {
                label: "BlockAMC",
                stages: Stages::One,
                config,
            },
        ]
    }

    /// Original AMC vs two-stage BlockAMC.
    pub fn original_vs_two_stage(config: CircuitEngineConfig) -> [SweepSolver; 2] {
        [
            SweepSolver {
                label: "Original AMC",
                stages: Stages::Original,
                config,
            },
            SweepSolver {
                label: "Two-stage BlockAMC",
                stages: Stages::Two,
                config,
            },
        ]
    }

    /// All three architectures.
    pub fn all_three(config: CircuitEngineConfig) -> [SweepSolver; 3] {
        [
            SweepSolver {
                label: "Original AMC",
                stages: Stages::Original,
                config,
            },
            SweepSolver {
                label: "One-stage BlockAMC",
                stages: Stages::One,
                config,
            },
            SweepSolver {
                label: "Two-stage BlockAMC",
                stages: Stages::Two,
                config,
            },
        ]
    }
}

/// Per-step trace comparison for Fig. 6(a) / Fig. 8(a,b): runs the
/// one-stage algorithm with a numeric engine and an analog engine on the
/// same workload and reports the per-step relative error.
pub fn step_trace_comparison(
    a: &Matrix,
    b: &[f64],
    config: CircuitEngineConfig,
    seed: u64,
) -> blockamc::Result<Vec<(String, f64)>> {
    use blockamc::converter::IoConfig;
    use blockamc::engine::NumericEngine;
    use blockamc::one_stage;

    let mut num = NumericEngine::new();
    let mut num_prep = one_stage::prepare_matrix(&mut num, a)?;
    let num_sol = one_stage::solve(&mut num, &mut num_prep, b, &IoConfig::ideal())?;

    let mut cir = CircuitEngine::new(config, seed);
    let mut cir_prep = one_stage::prepare_matrix(&mut cir, a)?;
    let cir_sol = one_stage::solve(&mut cir, &mut cir_prep, b, &IoConfig::ideal())?;

    Ok(num_sol
        .trace
        .iter()
        .zip(&cir_sol.trace)
        .map(|(nrec, crec)| {
            (
                nrec.step.to_string(),
                metrics::relative_error(&nrec.output, &crec.output),
            )
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_deterministic() {
        let mut r1 = ChaCha8Rng::seed_from_u64(1);
        let mut r2 = ChaCha8Rng::seed_from_u64(1);
        let (a1, b1) = make_workload(MatrixFamily::Wishart, 8, &mut r1);
        let (a2, b2) = make_workload(MatrixFamily::Wishart, 8, &mut r2);
        assert_eq!(a1, a2);
        assert_eq!(b1, b2);
        let (t, _) = make_workload(MatrixFamily::Toeplitz, 8, &mut r1);
        // SPD autocorrelation Toeplitz: symmetric, constant diagonals, and
        // the diagonal (the lag-0 autocorrelation plus ridge) dominates
        // every other lag.
        assert_eq!(t[(1, 1)], t[(0, 0)]);
        assert!(t.is_symmetric(0.0));
        assert!(t[(0, 0)] >= t.max_abs() * 0.999);
    }

    #[test]
    fn raw_toeplitz_workloads_are_guarded_and_deterministic() {
        use amc_linalg::lu::LuFactor;
        let mut r1 = ChaCha8Rng::seed_from_u64(2);
        let mut r2 = ChaCha8Rng::seed_from_u64(2);
        let (a1, b1) = make_workload(MatrixFamily::ToeplitzRaw, 16, &mut r1);
        let (a2, b2) = make_workload(MatrixFamily::ToeplitzRaw, 16, &mut r2);
        assert_eq!(a1, a2);
        assert_eq!(b1, b2);
        let cond = LuFactor::new(&a1).unwrap().cond_estimate(a1.norm_one());
        assert!(cond <= RAW_TOEPLITZ_MAX_COND, "cond={cond}");
        assert_eq!(MatrixFamily::ToeplitzRaw.label(), "raw Toeplitz");
    }

    #[test]
    fn sweep_produces_stats_for_each_solver() {
        let solvers = presets::original_vs_one_stage(CircuitEngineConfig::paper_variation());
        let points = accuracy_sweep(MatrixFamily::Wishart, &[8, 16], 3, &solvers, 42);
        assert_eq!(points.len(), 2);
        for p in &points {
            assert_eq!(p.stats.len(), 2);
            for s in &p.stats {
                assert_eq!(s.count, 3);
                assert!(s.mean > 0.0);
            }
        }
    }

    #[test]
    fn sweep_is_reproducible() {
        let solvers = presets::original_vs_one_stage(CircuitEngineConfig::paper_variation());
        let a = accuracy_sweep(MatrixFamily::Toeplitz, &[8], 2, &solvers, 7);
        let b = accuracy_sweep(MatrixFamily::Toeplitz, &[8], 2, &solvers, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn render_contains_labels_and_sizes() {
        let solvers = presets::all_three(CircuitEngineConfig::paper_variation());
        let points = accuracy_sweep(MatrixFamily::Wishart, &[8], 2, &solvers, 3);
        let text = render_sweep("test table", &solvers, &points);
        assert!(text.contains("test table"));
        assert!(text.contains("Original AMC"));
        assert!(text.contains("Two-stage BlockAMC"));
        assert!(text.contains("8x8"));
    }

    #[test]
    fn step_trace_has_five_steps_under_finite_gain() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let (a, b) = make_workload(MatrixFamily::Wishart, 8, &mut rng);
        let steps = step_trace_comparison(&a, &b, CircuitEngineConfig::ideal_mapping(), 1).unwrap();
        assert_eq!(steps.len(), 5);
        for (name, err) in &steps {
            assert!(err.is_finite(), "{name} err={err}");
        }
    }
}

//! Parallel batch-solve benches: worker count × batch size × depth.
//!
//! Measures `batch::solve_batch_parallel` end to end — prepare once,
//! replicate per worker, shard the right-hand sides over the `amc-par`
//! work-stealing pool — against the serial path. The wall-clock speedup
//! scales with the host's core count (a single-core CI runner shows ~1×
//! plus scheduling overhead; the determinism contract guarantees the
//! *output* is identical either way). The `repro` binary's `parallel`
//! command emits the same sweep as machine-readable `BENCH_parallel.json`.

use amc_bench::{make_workload, MatrixFamily};
use amc_circuit::opamp::OpAmpSpec;
use blockamc::batch;
use blockamc::engine::{CircuitEngine, CircuitEngineConfig};
use blockamc::solver::{BlockAmcSolver, Stages};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const N: usize = 64;

fn batch_of(k: usize) -> (amc_linalg::Matrix, Vec<Vec<f64>>) {
    let mut rng = ChaCha8Rng::seed_from_u64(23);
    let (a, _) = make_workload(MatrixFamily::Wishart, N, &mut rng);
    let batch = (0..k)
        .map(|_| amc_linalg::generate::random_vector(N, &mut rng))
        .collect();
    (a, batch)
}

/// The acceptance sweep: 64-RHS batch, one-stage macro, workers 1/2/4/8.
fn bench_worker_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_batch_workers");
    group.sample_size(10);
    let (a, batch) = batch_of(64);
    let config = CircuitEngineConfig::paper_variation();
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("workers", workers),
            &workers,
            |bencher, &workers| {
                bencher.iter(|| {
                    let mut solver =
                        BlockAmcSolver::new(CircuitEngine::new(config, 1), Stages::One);
                    std::hint::black_box(
                        batch::solve_batch_parallel(
                            &mut solver,
                            &a,
                            &batch,
                            &OpAmpSpec::ideal(),
                            0.0,
                            workers,
                        )
                        .expect("batch"),
                    );
                });
            },
        );
    }
    group.finish();
}

/// Batch-size scaling at a fixed worker count (does sharding overhead
/// amortize?).
fn bench_batch_size_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_batch_size");
    group.sample_size(10);
    let config = CircuitEngineConfig::paper_variation();
    let workers = amc_par::available_workers().clamp(2, 4);
    for k in [8usize, 16, 64] {
        let (a, batch) = batch_of(k);
        group.bench_with_input(BenchmarkId::new("rhs", k), &k, |bencher, _| {
            bencher.iter(|| {
                let mut solver = BlockAmcSolver::new(CircuitEngine::new(config, 1), Stages::One);
                std::hint::black_box(
                    batch::solve_batch_parallel(
                        &mut solver,
                        &a,
                        &batch,
                        &OpAmpSpec::ideal(),
                        0.0,
                        workers,
                    )
                    .expect("batch"),
                );
            });
        });
    }
    group.finish();
}

/// Depth scaling: deeper cascades do more, smaller analog ops per RHS;
/// sharding cost is per-RHS, so relative overhead grows with depth.
fn bench_depth_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_batch_depth");
    group.sample_size(10);
    let (a, batch) = batch_of(16);
    let config = CircuitEngineConfig::paper_variation();
    let workers = amc_par::available_workers().clamp(2, 4);
    for stages in [Stages::One, Stages::Two, Stages::Multi(3)] {
        group.bench_with_input(
            BenchmarkId::new("stages", format!("{stages:?}")),
            &stages,
            |bencher, &stages| {
                bencher.iter(|| {
                    let mut solver = BlockAmcSolver::new(CircuitEngine::new(config, 1), stages);
                    std::hint::black_box(
                        batch::solve_batch_parallel(
                            &mut solver,
                            &a,
                            &batch,
                            &OpAmpSpec::ideal(),
                            0.0,
                            workers,
                        )
                        .expect("batch"),
                    );
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_worker_sweep,
    bench_batch_size_sweep,
    bench_depth_sweep
);
criterion_main!(benches);

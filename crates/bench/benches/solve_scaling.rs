//! Time-to-solution scaling of the three solver architectures
//! (supports the latency discussion of DESIGN.md; the paper's Fig. 10
//! counts hardware, these benches measure simulated solve cost).

use amc_bench::{make_workload, MatrixFamily};
use blockamc::engine::{CircuitEngine, CircuitEngineConfig, NumericEngine};
use blockamc::solver::{BlockAmcSolver, Stages};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_architectures(c: &mut Criterion) {
    let mut group = c.benchmark_group("solve_scaling");
    group.sample_size(10);
    for &n in &[8usize, 16, 32, 64] {
        let mut rng = ChaCha8Rng::seed_from_u64(n as u64);
        let (a, b) = make_workload(MatrixFamily::Wishart, n, &mut rng);
        for (label, stages) in [
            ("original", Stages::Original),
            ("one_stage", Stages::One),
            ("two_stage", Stages::Two),
        ] {
            group.bench_with_input(BenchmarkId::new(label, n), &n, |bencher, _| {
                bencher.iter(|| {
                    let engine = CircuitEngine::new(CircuitEngineConfig::paper_variation(), 1);
                    let mut solver = BlockAmcSolver::new(engine, stages);
                    std::hint::black_box(solver.solve(&a, &b).expect("solve"));
                });
            });
        }
        group.bench_with_input(BenchmarkId::new("numeric_lu", n), &n, |bencher, _| {
            bencher.iter(|| {
                let mut solver = BlockAmcSolver::new(NumericEngine::new(), Stages::Original);
                std::hint::black_box(solver.solve(&a, &b).expect("solve"));
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_architectures);
criterion_main!(benches);

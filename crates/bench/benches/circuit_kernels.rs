//! Circuit-substrate kernels: the exact interconnect grid vs the series
//! approximation, and the dense LU the analytic path rests on.

use amc_circuit::grid::{inv_exact, mvm_exact};
use amc_circuit::interconnect::series_effective_conductances;
use amc_device::array::ProgrammedMatrix;
use amc_device::mapping::MappingConfig;
use amc_device::variation::VariationModel;
use amc_linalg::{generate, lu::LuFactor};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_grid_vs_series(c: &mut Criterion) {
    let mut group = c.benchmark_group("interconnect_models");
    group.sample_size(10);
    for &n in &[8usize, 16] {
        let mut rng = ChaCha8Rng::seed_from_u64(n as u64);
        let a = generate::wishart_default(n, &mut rng).expect("wishart");
        let b = generate::random_vector(n, &mut rng);
        let p = ProgrammedMatrix::program(
            &a,
            &MappingConfig::paper_default(),
            &VariationModel::None,
            &mut rng,
        )
        .expect("program");

        group.bench_with_input(BenchmarkId::new("series_approx", n), &n, |bencher, _| {
            let g = p.pos().conductances();
            bencher.iter(|| std::hint::black_box(series_effective_conductances(&g, 1.0)));
        });
        group.bench_with_input(BenchmarkId::new("exact_grid_mvm", n), &n, |bencher, _| {
            bencher.iter(|| std::hint::black_box(mvm_exact(&p, &b, 1.0).expect("mvm")));
        });
        group.bench_with_input(BenchmarkId::new("exact_grid_inv", n), &n, |bencher, _| {
            bencher.iter(|| std::hint::black_box(inv_exact(&p, &b, 1.0).expect("inv")));
        });
    }
    group.finish();
}

fn bench_lu(c: &mut Criterion) {
    let mut group = c.benchmark_group("dense_lu");
    group.sample_size(10);
    for &n in &[32usize, 128] {
        let mut rng = ChaCha8Rng::seed_from_u64(n as u64);
        let a = generate::wishart_default(n, &mut rng).expect("wishart");
        group.bench_with_input(BenchmarkId::new("factorize", n), &n, |bencher, _| {
            bencher.iter(|| std::hint::black_box(LuFactor::new(&a).expect("lu")));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_grid_vs_series, bench_lu);
criterion_main!(benches);

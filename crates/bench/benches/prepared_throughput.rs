//! Benches for the prepared-solver facade (paper §III.B amortization):
//!
//! * multi-RHS throughput of one `PreparedSolver` (arrays programmed
//!   once) vs the reprogram-per-solve convenience path, and
//! * a depth sweep (d = 1..4) of the per-level `Bus` signal plan — the
//!   ROADMAP's "deeper-than-2 partitioning benchmarks" with every
//!   inter-macro value crossing the ADC→DAC data bus.

use amc_bench::{make_workload, MatrixFamily};
use blockamc::converter::IoConfig;
use blockamc::engine::{CircuitEngine, CircuitEngineConfig};
use blockamc::solver::{SignalPlan, SolverConfig, Stages};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const RHS_PER_MATRIX: usize = 16;

fn bench_prepared_vs_reprogram(c: &mut Criterion) {
    let mut group = c.benchmark_group("prepared_multi_rhs");
    group.sample_size(10);
    let n = 32;
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let (a, _) = make_workload(MatrixFamily::Wishart, n, &mut rng);
    let batch: Vec<Vec<f64>> = (0..RHS_PER_MATRIX)
        .map(|_| amc_linalg::generate::random_vector(n, &mut rng))
        .collect();
    let config = CircuitEngineConfig::paper_variation();
    for stages in [Stages::One, Stages::Two] {
        let label = format!("{stages:?}");
        group.bench_with_input(
            BenchmarkId::new("prepare_once", &label),
            &stages,
            |bencher, &stages| {
                bencher.iter(|| {
                    let mut solver = SolverConfig::builder()
                        .stages(stages)
                        .capture_trace(false)
                        .build(CircuitEngine::new(config, 1))
                        .expect("valid config");
                    let mut prepared = solver.prepare(&a).expect("prepare");
                    std::hint::black_box(prepared.solve_batch(&batch).expect("batch"));
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("reprogram_per_solve", &label),
            &stages,
            |bencher, &stages| {
                bencher.iter(|| {
                    let mut solver = SolverConfig::builder()
                        .stages(stages)
                        .capture_trace(false)
                        .build(CircuitEngine::new(config, 1))
                        .expect("valid config");
                    for b in &batch {
                        std::hint::black_box(solver.solve(&a, b).expect("solve"));
                    }
                });
            },
        );
    }
    group.finish();
}

fn bench_bus_depth_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("bus_plan_depth");
    group.sample_size(10);
    let n = 32;
    let mut rng = ChaCha8Rng::seed_from_u64(13);
    let (a, b) = make_workload(MatrixFamily::Wishart, n, &mut rng);
    let config = CircuitEngineConfig::paper_variation();
    for depth in 1..=4usize {
        group.bench_with_input(BenchmarkId::new("depth", depth), &depth, |bencher, &d| {
            let plan = SignalPlan::uniform_bus(d, IoConfig::default_8bit());
            bencher.iter(|| {
                let mut solver = SolverConfig::builder()
                    .stages(Stages::Multi(d))
                    .signal_plan(plan.clone())
                    .capture_trace(false)
                    .build(CircuitEngine::new(config, 1))
                    .expect("valid config");
                std::hint::black_box(solver.solve(&a, &b).expect("solve"));
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_prepared_vs_reprogram, bench_bus_depth_sweep);
criterion_main!(benches);

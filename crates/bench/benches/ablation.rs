//! Ablation benches for the design choices called out in DESIGN.md:
//! partitioning depth and non-ideality toggles.

use amc_bench::{make_workload, MatrixFamily};
use blockamc::engine::{CircuitEngine, CircuitEngineConfig};
use blockamc::solver::{BlockAmcSolver, Stages};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition_depth");
    group.sample_size(10);
    let n = 32;
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let (a, b) = make_workload(MatrixFamily::Wishart, n, &mut rng);
    for depth in 0..=3usize {
        group.bench_with_input(BenchmarkId::new("depth", depth), &depth, |bencher, &d| {
            let stages = if d == 0 {
                Stages::Original
            } else {
                Stages::Multi(d)
            };
            bencher.iter(|| {
                let engine = CircuitEngine::new(CircuitEngineConfig::paper_variation(), 1);
                let mut solver = BlockAmcSolver::new(engine, stages);
                std::hint::black_box(solver.solve(&a, &b).expect("solve"));
            });
        });
    }
    group.finish();
}

fn bench_nonideality_toggles(c: &mut Criterion) {
    let mut group = c.benchmark_group("nonideality_cost");
    group.sample_size(10);
    let n = 32;
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let (a, b) = make_workload(MatrixFamily::Wishart, n, &mut rng);
    let configs = [
        ("ideal", CircuitEngineConfig::ideal()),
        ("finite_gain", CircuitEngineConfig::ideal_mapping()),
        ("variation", CircuitEngineConfig::paper_variation()),
        ("full", CircuitEngineConfig::paper_full()),
    ];
    for (label, config) in configs {
        group.bench_with_input(BenchmarkId::new(label, n), &n, |bencher, _| {
            bencher.iter(|| {
                let engine = CircuitEngine::new(config, 1);
                let mut solver = BlockAmcSolver::new(engine, Stages::One);
                std::hint::black_box(solver.solve(&a, &b).expect("solve"));
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_depth, bench_nonideality_toggles);
criterion_main!(benches);

//! Cost of the AMC primitives per engine (program / INV / MVM), isolating
//! where simulation time goes.

use amc_bench::{make_workload, MatrixFamily};
use amc_engine_simd::SimdEngine;
use blockamc::engine::{
    AmcEngine, BlockedNumericEngine, CircuitEngine, CircuitEngineConfig, NumericEngine,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_primitives");
    group.sample_size(10);
    for &n in &[16usize, 64] {
        let mut rng = ChaCha8Rng::seed_from_u64(n as u64);
        let (a, b) = make_workload(MatrixFamily::Wishart, n, &mut rng);

        group.bench_with_input(BenchmarkId::new("numeric_inv", n), &n, |bencher, _| {
            let mut e = NumericEngine::new();
            let mut op = e.program(&a).expect("program");
            bencher.iter(|| std::hint::black_box(e.inv(&mut op, &b).expect("inv")));
        });
        // The cache-blocked backend vs the plain reference: programming
        // + first INV (runs the blocked LU), then the amortized per-RHS
        // path through the buffer-reusing `inv_into`.
        group.bench_with_input(
            BenchmarkId::new("blocked_factorize", n),
            &n,
            |bencher, _| {
                let mut e = BlockedNumericEngine::default();
                bencher.iter(|| {
                    let mut op = e.program(&a).expect("program");
                    std::hint::black_box(e.inv(&mut op, &b).expect("inv"))
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("numeric_factorize", n),
            &n,
            |bencher, _| {
                let mut e = NumericEngine::new();
                bencher.iter(|| {
                    let mut op = e.program(&a).expect("program");
                    std::hint::black_box(e.inv(&mut op, &b).expect("inv"))
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("blocked_inv_into", n), &n, |bencher, _| {
            let mut e = BlockedNumericEngine::default();
            let mut op = e.program(&a).expect("program");
            let mut out = Vec::new();
            e.inv_into(&mut op, &b, &mut out).expect("warm-up inv");
            bencher.iter(|| {
                e.inv_into(&mut op, &b, &mut out).expect("inv");
                std::hint::black_box(out.len())
            });
        });
        group.bench_with_input(BenchmarkId::new("circuit_program", n), &n, |bencher, _| {
            let mut e = CircuitEngine::new(CircuitEngineConfig::paper_variation(), 1);
            bencher.iter(|| std::hint::black_box(e.program(&a).expect("program")));
        });
        group.bench_with_input(BenchmarkId::new("circuit_inv", n), &n, |bencher, _| {
            let mut e = CircuitEngine::new(CircuitEngineConfig::paper_variation(), 1);
            let mut op = e.program(&a).expect("program");
            bencher.iter(|| std::hint::black_box(e.inv(&mut op, &b).expect("inv")));
        });
        group.bench_with_input(BenchmarkId::new("circuit_mvm", n), &n, |bencher, _| {
            let mut e = CircuitEngine::new(CircuitEngineConfig::paper_variation(), 1);
            let mut op = e.program(&a).expect("program");
            bencher.iter(|| std::hint::black_box(e.mvm(&mut op, &b).expect("mvm")));
        });
    }
    group.finish();
}

/// The large-`n` ladder where the micro-tiled backend earns its keep:
/// full factorize+solve and the amortized per-RHS `inv_into` path for
/// simd vs numeric vs blocked at n = 256 / 512 / 1024.
fn bench_large_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_large_n");
    group.sample_size(10);
    for &n in &[256usize, 512, 1024] {
        let mut rng = ChaCha8Rng::seed_from_u64(0x51D + n as u64);
        let (a, b) = make_workload(MatrixFamily::Wishart, n, &mut rng);

        macro_rules! factorize_and_amortized {
            ($label:literal, $make:expr) => {
                group.bench_with_input(
                    BenchmarkId::new(concat!($label, "_factorize"), n),
                    &n,
                    |bencher, _| {
                        let mut e = $make;
                        let mut out = Vec::new();
                        bencher.iter(|| {
                            let mut op = e.program(&a).expect("program");
                            e.inv_into(&mut op, &b, &mut out).expect("inv");
                            std::hint::black_box(out.len())
                        });
                    },
                );
                group.bench_with_input(
                    BenchmarkId::new(concat!($label, "_inv_into"), n),
                    &n,
                    |bencher, _| {
                        let mut e = $make;
                        let mut op = e.program(&a).expect("program");
                        let mut out = Vec::new();
                        e.inv_into(&mut op, &b, &mut out).expect("warm-up inv");
                        bencher.iter(|| {
                            e.inv_into(&mut op, &b, &mut out).expect("inv");
                            std::hint::black_box(out.len())
                        });
                    },
                );
            };
        }

        factorize_and_amortized!("simd", SimdEngine::new());
        factorize_and_amortized!("numeric", NumericEngine::new());
        factorize_and_amortized!("blocked", BlockedNumericEngine::default());
    }
    group.finish();
}

criterion_group!(benches, bench_primitives, bench_large_n);
criterion_main!(benches);

//! Cache-blocked, micro-tiled GEMM update kernels.
//!
//! The workhorse is [`gemm_sub`], a rank-`k` update `C -= A·B` organized
//! the BLIS way: three cache-blocking loops (`NC`/`KC`/`MC`) stream
//! L2/L1-resident panels through a register-tiled micro-kernel. The
//! micro-kernel is const-generic over the tile shape (`MR`×`NR`), keeps
//! its accumulators in a plain `[[f64; NR]; MR]` array, and unrolls the
//! inner loops over constant bounds — exactly the shape the
//! autovectorizer lowers to wide multiply-add ops without any `unsafe`
//! or intrinsics. The tile width is picked at runtime by matrix size
//! ([`select_tile`]): 8×8 tiles amortize loads on large trailing
//! updates, 4×4 tiles waste less work on the small blocks the BlockAMC
//! recursion produces near its leaves.

/// Row count of one A cache block (streamed through L1 per micro-tile).
pub const MC: usize = 64;
/// Depth of one rank-`k` cache block (bounds micro-kernel accumulation).
pub const KC: usize = 128;
/// Column count of one B cache block (L2-resident packed panel).
pub const NC: usize = 512;

/// Threshold above which the wider 8×8 micro-tile pays for itself.
const WIDE_TILE_MIN_N: usize = 256;

/// Picks the micro-tile width (4 or 8) for a problem of size `n`.
///
/// Small blocks — the bulk of a deep BlockAMC partition tree — run the
/// 4×4 kernel (less edge waste); blocks of `n >= 256` run 8×8.
pub fn select_tile(n: usize) -> usize {
    if n >= WIDE_TILE_MIN_N {
        8
    } else {
        4
    }
}

/// Register-tiled `MR`×`NR` micro-kernel: `C_tile -= A_tile · B_tile`
/// over a depth-`kc` strip. `A` is an `MR`×`kc` row-major panel at
/// `a_off` with stride `lda`; `B` a `kc`×`NR` panel at `b_off` with
/// stride `ldb`; `C` the destination tile at `c_off` with stride `ldc`.
#[allow(clippy::too_many_arguments)]
fn micro_tile<const MR: usize, const NR: usize>(
    c: &mut [f64],
    ldc: usize,
    c_off: usize,
    a: &[f64],
    lda: usize,
    a_off: usize,
    b: &[f64],
    ldb: usize,
    b_off: usize,
    kc: usize,
) {
    let mut acc = [[0.0f64; NR]; MR];
    for p in 0..kc {
        let b_row = &b[b_off + p * ldb..b_off + p * ldb + NR];
        for (i, acc_row) in acc.iter_mut().enumerate() {
            let aip = a[a_off + i * lda + p];
            for (cell, &bpj) in acc_row.iter_mut().zip(b_row) {
                *cell += aip * bpj;
            }
        }
    }
    for (i, acc_row) in acc.iter().enumerate() {
        let c_row = &mut c[c_off + i * ldc..c_off + i * ldc + NR];
        for (cell, &sum) in c_row.iter_mut().zip(acc_row) {
            *cell -= sum;
        }
    }
}

/// Scalar fallback for tile remainders: `mr`×`nr` block, same layout
/// conventions as [`micro_tile`].
#[allow(clippy::too_many_arguments)]
fn scalar_block(
    c: &mut [f64],
    ldc: usize,
    c_off: usize,
    a: &[f64],
    lda: usize,
    a_off: usize,
    b: &[f64],
    ldb: usize,
    b_off: usize,
    mr: usize,
    nr: usize,
    kc: usize,
) {
    for i in 0..mr {
        for j in 0..nr {
            let mut acc = 0.0;
            for p in 0..kc {
                acc += a[a_off + i * lda + p] * b[b_off + p * ldb + j];
            }
            c[c_off + i * ldc + j] -= acc;
        }
    }
}

/// Tiles one `mc`×`nc` macro-block into `MR`×`NR` micro-tiles, with
/// scalar cleanup on the right/bottom edges.
#[allow(clippy::too_many_arguments)]
fn macro_block<const MR: usize, const NR: usize>(
    c: &mut [f64],
    ldc: usize,
    c_base: usize,
    a: &[f64],
    lda: usize,
    a_base: usize,
    b: &[f64],
    ldb: usize,
    b_base: usize,
    mc: usize,
    kc: usize,
    nc: usize,
) {
    let mut i = 0;
    while i + MR <= mc {
        let mut j = 0;
        while j + NR <= nc {
            micro_tile::<MR, NR>(
                c,
                ldc,
                c_base + i * ldc + j,
                a,
                lda,
                a_base + i * lda,
                b,
                ldb,
                b_base + j,
                kc,
            );
            j += NR;
        }
        if j < nc {
            scalar_block(
                c,
                ldc,
                c_base + i * ldc + j,
                a,
                lda,
                a_base + i * lda,
                b,
                ldb,
                b_base + j,
                MR,
                nc - j,
                kc,
            );
        }
        i += MR;
    }
    if i < mc {
        scalar_block(
            c,
            ldc,
            c_base + i * ldc,
            a,
            lda,
            a_base + i * lda,
            b,
            ldb,
            b_base,
            mc - i,
            nc,
            kc,
        );
    }
}

/// Cache-blocked update `C[c_row.., c_col..] -= A · B`.
///
/// `a` is an `m`×`kk` row-major panel with stride `lda`, `b` a
/// `kk`×`nn` row-major panel with stride `ldb` (both typically packed
/// contiguously, `lda == kk` / `ldb == nn`), and `c` the full
/// destination matrix with stride `ldc`. `tile` selects the
/// micro-kernel width (8 runs 8×8 tiles, anything else 4×4) — pass
/// [`select_tile`] of the enclosing problem size.
///
/// The result is deterministic for a given input and `tile`, but the
/// blocked accumulation order differs from a naive triple loop, so
/// products agree with a reference GEMM only to rounding — which is why
/// the simd engine is proven *bounded* against `NumericEngine` rather
/// than bit-identical.
#[allow(clippy::too_many_arguments)]
pub fn gemm_sub(
    c: &mut [f64],
    ldc: usize,
    c_row: usize,
    c_col: usize,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    m: usize,
    kk: usize,
    nn: usize,
    tile: usize,
) {
    for pc in (0..kk).step_by(KC) {
        let kc = KC.min(kk - pc);
        for jc in (0..nn).step_by(NC) {
            let nc = NC.min(nn - jc);
            for ic in (0..m).step_by(MC) {
                let mc = MC.min(m - ic);
                let c_base = (c_row + ic) * ldc + c_col + jc;
                let a_base = ic * lda + pc;
                let b_base = pc * ldb + jc;
                if tile == 8 {
                    macro_block::<8, 8>(c, ldc, c_base, a, lda, a_base, b, ldb, b_base, mc, kc, nc);
                } else {
                    macro_block::<4, 4>(c, ldc, c_base, a, lda, a_base, b, ldb, b_base, mc, kc, nc);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amc_linalg::generate;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn naive_sub(c: &mut [f64], ldc: usize, a: &[f64], b: &[f64], m: usize, kk: usize, nn: usize) {
        for i in 0..m {
            for j in 0..nn {
                let mut acc = 0.0;
                for p in 0..kk {
                    acc += a[i * kk + p] * b[p * nn + j];
                }
                c[i * ldc + j] -= acc;
            }
        }
    }

    #[test]
    fn tile_selection_by_problem_size() {
        assert_eq!(select_tile(16), 4);
        assert_eq!(select_tile(255), 4);
        assert_eq!(select_tile(256), 8);
        assert_eq!(select_tile(4096), 8);
    }

    #[test]
    fn tiled_update_matches_naive_at_awkward_shapes() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        // Shapes straddling every tile/cache-block edge case.
        for &(m, kk, nn) in &[
            (1usize, 1usize, 1usize),
            (3, 5, 2),
            (4, 4, 4),
            (7, 9, 13),
            (8, 8, 8),
            (17, 33, 21),
            (65, 130, 70),
        ] {
            for tile in [4usize, 8] {
                let a = generate::gaussian(m, kk, &mut rng);
                let b = generate::gaussian(kk, nn, &mut rng);
                let c0 = generate::gaussian(m, nn, &mut rng);
                let mut c_tiled = c0.as_slice().to_vec();
                let mut c_ref = c0.as_slice().to_vec();
                gemm_sub(
                    &mut c_tiled,
                    nn,
                    0,
                    0,
                    a.as_slice(),
                    kk,
                    b.as_slice(),
                    nn,
                    m,
                    kk,
                    nn,
                    tile,
                );
                naive_sub(&mut c_ref, nn, a.as_slice(), b.as_slice(), m, kk, nn);
                for (t, r) in c_tiled.iter().zip(&c_ref) {
                    assert!(
                        (t - r).abs() <= 1e-11 * r.abs().max(1.0),
                        "({m},{kk},{nn}) tile={tile}: {t} vs {r}"
                    );
                }
            }
        }
    }

    #[test]
    fn update_lands_in_the_addressed_submatrix() {
        // C is 6x6; update only its trailing 3x3 corner.
        let mut c = vec![1.0; 36];
        let a = vec![1.0; 3 * 2];
        let b = vec![1.0; 2 * 3];
        gemm_sub(&mut c, 6, 3, 3, &a, 2, &b, 3, 3, 2, 3, 4);
        for i in 0..6 {
            for j in 0..6 {
                let expected = if i >= 3 && j >= 3 { -1.0 } else { 1.0 };
                assert_eq!(c[i * 6 + j], expected, "({i},{j})");
            }
        }
    }
}

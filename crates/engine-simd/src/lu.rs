//! Panel-blocked LU factorization feeding the micro-tiled GEMM.
//!
//! Classic right-looking blocked elimination: factorize a narrow panel
//! with partial pivoting, triangular-solve the row block to its right,
//! then push the whole trailing submatrix through
//! [`kernels::gemm_sub`] — which is where ~all the flops of a large
//! factorization land, and where the micro-tiles vectorize. The panel
//! width adapts to the problem size ([`auto_panel`]), as does the
//! micro-tile width ([`kernels::select_tile`]).
//!
//! Unlike `amc_linalg::lu::LuFactor::new_blocked` — which is pinned
//! bit-identical to the unblocked reference — this factorization
//! reorders the trailing-update accumulation for speed, so it agrees
//! with the reference only to rounding (proven bounded by the proptests
//! in `lib.rs`).

use amc_linalg::{LinalgError, Matrix};

use crate::kernels;

/// Relative pivot floor mirroring `amc_linalg::lu`: a pivot at or below
/// `max|A|·RTOL` is reported singular.
const SINGULARITY_RTOL: f64 = 1e-300;

/// Panel width for a problem of size `n`: narrow panels keep small
/// factorizations in the pivot-bound regime; wide panels feed the GEMM
/// bigger rank-`k` updates once the trailing matrix dominates.
pub fn auto_panel(n: usize) -> usize {
    match n {
        0..=127 => 24,
        128..=511 => 48,
        _ => 64,
    }
}

/// A blocked LU factorization `P·A = L·U` with packed storage.
#[derive(Debug, Clone)]
pub struct SimdLu {
    /// Row-major packed factors: strict lower = `L` (unit diagonal
    /// implicit), upper = `U`.
    lu: Vec<f64>,
    /// Row permutation: solve reads `b[perm[i]]` into slot `i`.
    perm: Vec<usize>,
    n: usize,
}

impl SimdLu {
    /// Factorizes a square matrix with the size-adapted panel width.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NonSquare`] for a non-square input.
    /// * [`LinalgError::InvalidArgument`] for an empty one.
    /// * [`LinalgError::Singular`] when a pivot falls to the floor.
    pub fn new(a: &Matrix) -> Result<Self, LinalgError> {
        Self::with_panel(a, auto_panel(a.rows()))
    }

    /// Factorizes with an explicit panel width (clamped to at least 1).
    ///
    /// # Errors
    ///
    /// Same conditions as [`SimdLu::new`].
    pub fn with_panel(a: &Matrix, panel: usize) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NonSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::invalid("cannot factorize an empty matrix"));
        }
        let panel = panel.max(1);
        let tol = SINGULARITY_RTOL * a.max_abs().max(1.0);
        let tile = kernels::select_tile(n);
        let mut lu = a.as_slice().to_vec();
        let mut perm: Vec<usize> = (0..n).collect();
        // Packing buffers for the trailing update: L21 (m×kp) and U12
        // (kp×nn) are copied out so the GEMM reads contiguous panels —
        // the usual cache/TLB win, and it sidesteps aliasing between
        // the three regions of `lu`.
        let mut l21 = Vec::new();
        let mut u12 = Vec::new();

        let mut k0 = 0;
        while k0 < n {
            let kend = (k0 + panel).min(n);
            // 1. Panel factorization: partial pivoting over rows k..n,
            //    eliminating within columns k0..kend only.
            for k in k0..kend {
                let mut piv = k;
                let mut best = lu[k * n + k].abs();
                for i in (k + 1)..n {
                    let v = lu[i * n + k].abs();
                    if v > best {
                        best = v;
                        piv = i;
                    }
                }
                if best <= tol {
                    return Err(LinalgError::Singular { pivot: k });
                }
                if piv != k {
                    perm.swap(k, piv);
                    for j in 0..n {
                        lu.swap(k * n + j, piv * n + j);
                    }
                }
                let pivot = lu[k * n + k];
                for i in (k + 1)..n {
                    let mult = lu[i * n + k] / pivot;
                    lu[i * n + k] = mult;
                    if mult != 0.0 {
                        let (head, tail) = lu.split_at_mut(i * n);
                        let src = &head[k * n + k + 1..k * n + kend];
                        let dst = &mut tail[k + 1..kend];
                        for (d, &s) in dst.iter_mut().zip(src) {
                            *d -= mult * s;
                        }
                    }
                }
            }
            if kend < n {
                // 2. U12 = L11⁻¹·A12: unit-lower forward substitution
                //    applied row-block-wise to columns kend..n.
                for k in k0..kend {
                    for i in (k + 1)..kend {
                        let lik = lu[i * n + k];
                        if lik != 0.0 {
                            let (head, tail) = lu.split_at_mut(i * n);
                            let src = &head[k * n + kend..k * n + n];
                            let dst = &mut tail[kend..n];
                            for (d, &s) in dst.iter_mut().zip(src) {
                                *d -= lik * s;
                            }
                        }
                    }
                }
                // 3. Trailing update A22 -= L21·U12 through the
                //    micro-tiled GEMM, on packed panels.
                let m = n - kend;
                let kp = kend - k0;
                let nn = n - kend;
                l21.clear();
                for i in kend..n {
                    l21.extend_from_slice(&lu[i * n + k0..i * n + kend]);
                }
                u12.clear();
                for k in k0..kend {
                    u12.extend_from_slice(&lu[k * n + kend..k * n + n]);
                }
                kernels::gemm_sub(&mut lu, n, kend, kend, &l21, kp, &u12, nn, m, kp, nn, tile);
            }
            k0 = kend;
        }
        Ok(SimdLu { lu, perm, n })
    }

    /// Dimension of the factorized matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Solves `A·x = b` into a caller-owned buffer of length `n`.
    ///
    /// # Errors
    ///
    /// [`LinalgError::ShapeMismatch`] if `b` or `out` has the wrong
    /// length.
    pub fn solve_into(&self, b: &[f64], out: &mut [f64]) -> Result<(), LinalgError> {
        let n = self.n;
        if b.len() != n || out.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "simd_lu_solve",
                lhs: (n, n),
                rhs: (b.len().max(out.len()), 1),
            });
        }
        for (slot, &src) in out.iter_mut().zip(&self.perm) {
            *slot = b[src];
        }
        // Forward substitution, unit lower triangle. Splitting the
        // solution at `i` turns each step into a plain dot product the
        // autovectorizer can widen.
        for i in 1..n {
            let row = &self.lu[i * n..i * n + i];
            let (solved, rest) = out.split_at_mut(i);
            let acc: f64 = row.iter().zip(solved.iter()).map(|(&l, &x)| l * x).sum();
            rest[0] -= acc;
        }
        // Back substitution on U, same shape from the other end.
        for i in (0..n).rev() {
            let row = &self.lu[i * n + i..(i + 1) * n];
            let (head, solved) = out.split_at_mut(i + 1);
            let acc: f64 = row[1..]
                .iter()
                .zip(solved.iter())
                .map(|(&u, &x)| u * x)
                .sum();
            head[i] = (head[i] - acc) / row[0];
        }
        Ok(())
    }

    /// Allocating convenience wrapper over [`SimdLu::solve_into`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`SimdLu::solve_into`].
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let mut x = vec![0.0; self.n];
        self.solve_into(b, &mut x)?;
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amc_linalg::{generate, lu::LuFactor, vector};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn panel_width_is_monotone_in_problem_size() {
        assert!(auto_panel(16) <= auto_panel(200));
        assert!(auto_panel(200) <= auto_panel(2048));
    }

    #[test]
    fn solves_match_reference_lu_across_sizes_and_panels() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for n in [1usize, 2, 7, 24, 25, 48, 97, 160] {
            let a = generate::diagonally_dominant(n, 1.5, &mut rng).unwrap();
            let b = generate::random_vector(n, &mut rng);
            let x_ref = LuFactor::new(&a).unwrap().solve(&b).unwrap();
            for panel in [1usize, 3, 24, 64, 1000] {
                let x = SimdLu::with_panel(&a, panel).unwrap().solve(&b).unwrap();
                assert!(vector::approx_eq(&x, &x_ref, 1e-9), "n={n} panel={panel}");
            }
            let x = SimdLu::new(&a).unwrap().solve(&b).unwrap();
            assert!(vector::approx_eq(&x, &x_ref, 1e-9), "n={n} auto panel");
        }
    }

    #[test]
    fn pivoting_handles_zero_leading_entries() {
        let a = Matrix::from_rows(&[&[0.0, 2.0], &[3.0, 1.0]]).unwrap();
        let x = SimdLu::new(&a).unwrap().solve(&[4.0, 5.0]).unwrap();
        assert!((a.matvec(&x).unwrap()[0] - 4.0).abs() < 1e-12);
        assert!((a.matvec(&x).unwrap()[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_singular_empty_and_non_square() {
        assert!(matches!(
            SimdLu::new(&Matrix::zeros(3, 3)),
            Err(LinalgError::Singular { pivot: 0 })
        ));
        assert!(SimdLu::new(&Matrix::zeros(0, 0)).is_err());
        assert!(SimdLu::new(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn solve_validates_lengths() {
        let a = Matrix::identity(3);
        let f = SimdLu::new(&a).unwrap();
        assert_eq!(f.dim(), 3);
        assert!(f.solve(&[1.0]).is_err());
        let mut short = vec![0.0; 2];
        assert!(f.solve_into(&[1.0, 2.0, 3.0], &mut short).is_err());
    }
}

//! `amc-engine-simd`: a cache-blocked, micro-tiled digital backend for
//! the BlockAMC engine API.
//!
//! [`SimdEngine`] implements [`blockamc::engine::AmcEngine`] with
//! kernels written for the autovectorizer: a panel-blocked LU
//! ([`SimdLu`]) whose trailing updates run through a const-generic
//! register-tiled GEMM ([`kernels::gemm_sub`], 4×4 or 8×8 tiles picked
//! at runtime by matrix size). No `unsafe`, no intrinsics — the tiles
//! are shaped so LLVM lowers the unrolled inner loops to wide
//! multiply-adds on any target.
//!
//! The backend plugs into the name-driven engine surface through
//! [`register`], which installs it in an
//! [`blockamc::engine::EngineRegistry`] under [`ENGINE_NAME`] — core
//! never learns the type:
//!
//! ```
//! use blockamc::engine::EngineRegistry;
//!
//! # fn main() -> Result<(), blockamc::BlockAmcError> {
//! let mut registry = EngineRegistry::builtin();
//! amc_engine_simd::register(&mut registry);
//! let mut engine = registry.build(amc_engine_simd::ENGINE_NAME, 0)?;
//! assert_eq!(engine.name(), "simd");
//! # Ok(())
//! # }
//! ```
//!
//! **Accuracy contract:** the blocked accumulation order differs from
//! the reference elimination, so results agree with
//! [`blockamc::engine::NumericEngine`] to rounding rather than
//! bit-for-bit. The bound is pinned by proptests in this crate
//! (`simd_solves_are_bounded_against_numeric`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::any::Any;

use amc_linalg::Matrix;
use blockamc::engine::{AmcEngine, EngineRegistry, EngineStats, Operand, OperandState};
use blockamc::Result;

pub mod kernels;
mod lu;

pub use lu::{auto_panel, SimdLu};

/// The registry name this backend installs under (and reports from
/// [`AmcEngine::name`]).
pub const ENGINE_NAME: &str = "simd";

/// Registers (or replaces) the simd backend in `registry` under
/// [`ENGINE_NAME`]. The constructor ignores the seed — this backend is
/// exact-digital and draws nothing.
pub fn register(registry: &mut EngineRegistry) {
    registry.register(ENGINE_NAME, |_seed| Ok(Box::new(SimdEngine::new())));
}

/// Operand state of [`SimdEngine`]: the exact matrix with a lazily
/// built blocked factorization.
#[derive(Debug, Clone)]
struct SimdOperand {
    a: Matrix,
    lu: Option<SimdLu>,
}

impl OperandState for SimdOperand {
    fn clone_boxed(&self) -> Box<dyn OperandState> {
        Box::new(self.clone())
    }

    fn shape(&self) -> (usize, usize) {
        self.a.shape()
    }

    fn effective_matrix(&self) -> Matrix {
        self.a.clone()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Cache-blocked, micro-tiled digital engine.
///
/// Same signed conventions as every backend — INV returns `−A⁻¹·b`,
/// MVM returns `−A·x` — and the same lazy-factorize/buffer-reuse hot
/// paths as `BlockedNumericEngine`, but with the tiled kernels of this
/// crate underneath.
#[derive(Debug, Clone, Default)]
pub struct SimdEngine {
    stats: EngineStats,
}

impl SimdEngine {
    /// Creates the engine.
    pub fn new() -> Self {
        Self::default()
    }
}

impl AmcEngine for SimdEngine {
    fn program(&mut self, a: &Matrix) -> Result<Operand> {
        self.stats.count_program();
        Ok(Operand::new(SimdOperand {
            a: a.clone(),
            lu: None,
        }))
    }

    fn inv(&mut self, operand: &mut Operand, b: &[f64]) -> Result<Vec<f64>> {
        let mut x = Vec::new();
        self.inv_into(operand, b, &mut x)?;
        Ok(x)
    }

    fn inv_into(&mut self, operand: &mut Operand, b: &[f64], out: &mut Vec<f64>) -> Result<()> {
        let state = operand.expect_state_mut::<SimdOperand>("simd")?;
        if state.lu.is_none() {
            state.lu = Some(SimdLu::new(&state.a)?);
        }
        let lu = state.lu.as_ref().expect("factorization was just installed");
        out.resize(lu.dim(), 0.0);
        lu.solve_into(b, out)?;
        amc_linalg::vector::neg_in_place(out);
        self.stats.count_inv();
        Ok(())
    }

    fn mvm(&mut self, operand: &mut Operand, x: &[f64]) -> Result<Vec<f64>> {
        let mut y = Vec::new();
        self.mvm_into(operand, x, &mut y)?;
        Ok(y)
    }

    fn mvm_into(&mut self, operand: &mut Operand, x: &[f64], out: &mut Vec<f64>) -> Result<()> {
        let state = operand.expect_state_mut::<SimdOperand>("simd")?;
        out.resize(state.a.rows(), 0.0);
        state.a.matvec_into(x, out)?;
        amc_linalg::vector::neg_in_place(out);
        self.stats.count_mvm();
        Ok(())
    }

    fn name(&self) -> &'static str {
        ENGINE_NAME
    }

    fn stats(&self) -> EngineStats {
        self.stats
    }

    fn clone_boxed(&self) -> Box<dyn AmcEngine> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amc_linalg::{generate, vector};
    use blockamc::engine::NumericEngine;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn engine_name_and_stats() {
        let mut e = SimdEngine::new();
        assert_eq!(e.name(), "simd");
        let a = Matrix::identity(4);
        let mut op = e.program(&a).unwrap();
        e.inv(&mut op, &[1.0; 4]).unwrap();
        e.mvm(&mut op, &[1.0; 4]).unwrap();
        let s = e.stats();
        assert_eq!((s.program_ops, s.inv_ops, s.mvm_ops), (1, 1, 1));
    }

    #[test]
    fn signed_conventions_match_numeric_engine() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let a = generate::diagonally_dominant(12, 1.5, &mut rng).unwrap();
        let b = generate::random_vector(12, &mut rng);
        let mut simd = SimdEngine::new();
        let mut numeric = NumericEngine::new();
        let mut op_s = simd.program(&a).unwrap();
        let mut op_n = numeric.program(&a).unwrap();
        // INV: −A⁻¹·b, bounded against the reference.
        let x_s = simd.inv(&mut op_s, &b).unwrap();
        let x_n = numeric.inv(&mut op_n, &b).unwrap();
        assert!(vector::approx_eq(&x_s, &x_n, 1e-10));
        // MVM: −A·x, same dense matvec ⇒ bit-identical.
        assert_eq!(
            simd.mvm(&mut op_s, &b).unwrap(),
            numeric.mvm(&mut op_n, &b).unwrap()
        );
    }

    #[test]
    fn buffers_are_reused_without_reallocation() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let a = generate::diagonally_dominant(8, 1.5, &mut rng).unwrap();
        let mut e = SimdEngine::new();
        let mut op = e.program(&a).unwrap();
        let mut out = Vec::with_capacity(8);
        let base_ptr = out.as_ptr();
        for _ in 0..3 {
            let b = generate::random_vector(8, &mut rng);
            e.inv_into(&mut op, &b, &mut out).unwrap();
            assert_eq!(out.len(), 8);
        }
        assert_eq!(out.as_ptr(), base_ptr, "no reallocation across solves");
    }

    #[test]
    fn rejects_foreign_operands() {
        let mut numeric = NumericEngine::new();
        let mut foreign = numeric.program(&Matrix::identity(2)).unwrap();
        let mut e = SimdEngine::new();
        assert!(e.inv(&mut foreign, &[1.0, 1.0]).is_err());
    }

    #[test]
    fn registers_and_round_trips_by_name() {
        let mut registry = EngineRegistry::builtin();
        assert!(!registry.contains(ENGINE_NAME));
        register(&mut registry);
        assert!(registry.contains(ENGINE_NAME));
        let mut engine = registry.build(ENGINE_NAME, 42).unwrap();
        assert_eq!(engine.name(), "simd");
        let a = Matrix::identity(3);
        let mut op = engine.program(&a).unwrap();
        let x = engine.inv(&mut op, &[1.0, 2.0, 3.0]).unwrap();
        assert!(vector::approx_eq(&x, &[-1.0, -2.0, -3.0], 1e-14));
        // Re-registration replaces, not duplicates.
        register(&mut registry);
        assert_eq!(registry.names().filter(|n| *n == ENGINE_NAME).count(), 1);
    }

    proptest! {
        // The accuracy contract of the crate: on well-conditioned
        // random systems the simd backend agrees with NumericEngine to
        // a tight relative bound at every size and panel boundary.
        #[test]
        fn simd_solves_are_bounded_against_numeric(
            n in 1usize..80,
            seed in 0u64..256,
        ) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let a = generate::diagonally_dominant(n, 1.5, &mut rng).unwrap();
            let b = generate::random_vector(n, &mut rng);
            let mut simd = SimdEngine::new();
            let mut numeric = NumericEngine::new();
            let mut op_s = simd.program(&a).unwrap();
            let mut op_n = numeric.program(&a).unwrap();
            let x_s = simd.inv(&mut op_s, &b).unwrap();
            let x_n = numeric.inv(&mut op_n, &b).unwrap();
            prop_assert!(
                vector::approx_eq(&x_s, &x_n, 1e-9),
                "n={} diverged: {:?} vs {:?}", n, x_s, x_n
            );
        }

        // Determinism: repeated factorize+solve of the same system is
        // bit-identical (no hidden state, no run-to-run reordering).
        #[test]
        fn simd_solves_are_deterministic(n in 1usize..40, seed in 0u64..64) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let a = generate::diagonally_dominant(n, 1.5, &mut rng).unwrap();
            let b = generate::random_vector(n, &mut rng);
            let solve = |a: &Matrix, b: &[f64]| {
                let mut e = SimdEngine::new();
                let mut op = e.program(a).unwrap();
                e.inv(&mut op, b).unwrap()
            };
            prop_assert_eq!(solve(&a, &b), solve(&a, &b));
        }
    }
}

//! The [`Json`] value model and its text emitter.
//!
//! This is the single in-memory representation every config file and
//! report artifact in the workspace goes through. The emitter
//! ([`Json::render`]) and the parser ([`Json::parse`]) are exact
//! inverses on everything the tree can emit: rendering uses the
//! shortest-round-trip `f64` formatting (`{:?}`), parsing reads numbers
//! with `str::parse::<f64>` (correctly rounded), so
//! `parse(render(x)) == x` bit-for-bit.

use std::fmt::Write as _;

use crate::error::ParseError;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values render as `null`, which keeps
    /// emitted files standard-compliant; prefer [`Json::num`], which
    /// normalizes non-finite inputs up front).
    Num(f64),
    /// An integer, rendered without a decimal point.
    Int(i64),
    /// An integer above `i64::MAX`, rendered without a decimal point.
    /// The parser only produces this variant for literals that do not
    /// fit [`Json::Int`], so integer values have one canonical form.
    UInt(u64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds a numeric value, normalizing non-finite inputs to
    /// [`Json::Null`].
    ///
    /// The emitter already renders non-finite [`Json::Num`] as `null`;
    /// normalizing at construction makes the in-memory value agree with
    /// its rendering, so `parse(render(x)) == x` is total on everything
    /// built through this constructor.
    pub fn num(x: f64) -> Json {
        if x.is_finite() {
            Json::Num(x)
        } else {
            Json::Null
        }
    }

    /// Builds the externally-tagged encoding of an enum variant with a
    /// payload: `{"Name": payload}`.
    pub fn tagged(name: &str, payload: Json) -> Json {
        Json::Obj(vec![(name.to_string(), payload)])
    }

    /// Parses strict JSON text into a value.
    ///
    /// Strictness guarantees (each rejection carries the offending line
    /// and column):
    ///
    /// - duplicate object keys are rejected,
    /// - trailing non-whitespace after the top-level value is rejected,
    /// - nesting deeper than [`Json::MAX_DEPTH`] levels is rejected,
    /// - numbers follow the JSON grammar exactly (no leading zeros, no
    ///   bare `.5`, no `Infinity`/`NaN`), and literals that overflow
    ///   `f64` or `u64` are rejected rather than saturated,
    /// - strings must escape control characters and pair surrogates.
    ///
    /// Integer literals decode to [`Json::Int`] when they fit `i64`,
    /// to [`Json::UInt`] otherwise; literals with a fraction or
    /// exponent decode to [`Json::Num`] via `str::parse::<f64>`, which
    /// is correctly rounded — so the emitter's shortest-round-trip
    /// `f64` text parses back to identical bits.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] with 1-based line/column positioning on
    /// any malformed input; this function never panics.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        crate::parse::parse(text)
    }

    /// Maximum nesting depth [`Json::parse`] accepts.
    pub const MAX_DEPTH: usize = 128;

    /// A short name for the value's kind, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "a bool",
            Json::Num(_) | Json::Int(_) | Json::UInt(_) => "a number",
            Json::Str(_) => "a string",
            Json::Arr(_) => "an array",
            Json::Obj(_) => "an object",
        }
    }

    /// Renders the value as pretty-printed JSON (2-space indent) with a
    /// trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    // `{:?}` is the shortest representation that parses
                    // back to the same f64, and always carries a decimal
                    // point or exponent.
                    let _ = write!(out, "{x:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Str(s) => render_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (k, item) in items.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.render_into(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (k, (key, value)) in pairs.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    render_string(out, key);
                    out.push_str(": ");
                    value.render_into(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn render_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::num(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Int(v as i64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl From<Option<f64>> for Json {
    fn from(v: Option<f64>) -> Json {
        v.map_or(Json::Null, Json::num)
    }
}

impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

/// Writes a rendered JSON value to `path`.
///
/// # Errors
///
/// Propagates filesystem failures.
pub fn write_json(path: &str, value: &Json) -> std::io::Result<()> {
    std::fs::write(path, value.render())
}

//! The strict JSON parser behind [`Json::parse`].
//!
//! Recursive descent over the input bytes with strict conformance:
//! duplicate keys, trailing garbage, over-deep nesting, malformed
//! numbers, and broken escapes are all rejected with the 1-based
//! line/column of the offending character.

use crate::error::ParseError;
use crate::value::Json;

pub(crate) fn parse(text: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        text,
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos < p.bytes.len() {
        return Err(p.err("trailing characters after the top-level value"));
    }
    Ok(value)
}

struct Parser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        self.err_at(self.pos, message)
    }

    fn err_at(&self, pos: usize, message: impl Into<String>) -> ParseError {
        let (line, column) = locate(self.text, pos);
        ParseError {
            line,
            column,
            message: message.into(),
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth >= Json::MAX_DEPTH {
            return Err(self.err(format!(
                "nesting exceeds the maximum depth of {} levels",
                Json::MAX_DEPTH
            )));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input, expected a value")),
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'n') => self.keyword("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => {
                let c = self.text[self.pos..].chars().next().unwrap_or('\u{fffd}');
                Err(self.err(format!("unexpected character {c:?}, expected a value")))
            }
        }
    }

    fn keyword(&mut self, word: &'static str, value: Json) -> Result<Json, ParseError> {
        if self.text[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("invalid literal, expected `{word}`")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.pos += 1; // '{'
        self.skip_ws();
        let mut pairs: Vec<(String, Json)> = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key_pos = self.pos;
            if self.peek() != Some(b'"') {
                return Err(self.err("expected a string key in object"));
            }
            let key = self.string()?;
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(self.err_at(key_pos, format!("duplicate key {key:?} in object")));
            }
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected ':' after object key"));
            }
            self.pos += 1;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.pos += 1; // '['
        self.skip_ws();
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            let Some(c) = self.text[self.pos..].chars().next() else {
                return Err(self.err_at(start, "unterminated string"));
            };
            match c {
                '"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                '\\' => {
                    let escape_pos = self.pos;
                    self.pos += 1;
                    let Some(e) = self.text[self.pos..].chars().next() else {
                        return Err(self.err_at(start, "unterminated string"));
                    };
                    self.pos += e.len_utf8();
                    match e {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'b' => out.push('\u{8}'),
                        'f' => out.push('\u{c}'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'u' => out.push(self.unicode_escape(escape_pos)?),
                        other => {
                            return Err(self.err_at(
                                escape_pos,
                                format!("invalid escape character {other:?}"),
                            ));
                        }
                    }
                }
                c if (c as u32) < 0x20 => {
                    return Err(self.err("unescaped control character in string"));
                }
                c => {
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Decodes the payload of a `\u` escape (cursor just past the `u`),
    /// combining surrogate pairs.
    fn unicode_escape(&mut self, escape_pos: usize) -> Result<char, ParseError> {
        let hi = self.hex4(escape_pos)?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: a low surrogate escape must follow.
            if !self.text[self.pos..].starts_with("\\u") {
                return Err(self.err_at(escape_pos, "unpaired surrogate in \\u escape"));
            }
            self.pos += 2;
            let lo = self.hex4(escape_pos)?;
            if !(0xDC00..0xE000).contains(&lo) {
                return Err(self.err_at(escape_pos, "invalid low surrogate in \\u escape"));
            }
            let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
            return char::from_u32(code)
                .ok_or_else(|| self.err_at(escape_pos, "invalid \\u escape"));
        }
        char::from_u32(hi)
            .ok_or_else(|| self.err_at(escape_pos, "unpaired surrogate in \\u escape"))
    }

    fn hex4(&mut self, escape_pos: usize) -> Result<u32, ParseError> {
        let digits = self.bytes.get(self.pos..self.pos + 4).ok_or_else(|| {
            self.err_at(escape_pos, "\\u escape requires four hexadecimal digits")
        })?;
        let mut code = 0u32;
        for &d in digits {
            let v = (d as char).to_digit(16).ok_or_else(|| {
                self.err_at(escape_pos, "\\u escape requires four hexadecimal digits")
            })?;
            code = code * 16 + v;
        }
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: `0` alone or a nonzero digit run (no leading
        // zeros, per the JSON grammar).
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    return Err(self.err_at(start, "numbers may not have leading zeros"));
                }
            }
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err_at(start, "invalid number")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("expected digits after the decimal point"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("expected digits in the exponent"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let literal = &self.text[start..self.pos];
        if is_float {
            // `str::parse::<f64>` is correctly rounded, so the
            // emitter's shortest-round-trip text parses back exactly.
            let x: f64 = literal
                .parse()
                .map_err(|_| self.err_at(start, format!("invalid number literal `{literal}`")))?;
            if !x.is_finite() {
                return Err(self.err_at(start, format!("number `{literal}` overflows f64")));
            }
            Ok(Json::Num(x))
        } else if let Ok(i) = literal.parse::<i64>() {
            Ok(Json::Int(i))
        } else if let Ok(u) = literal.parse::<u64>() {
            Ok(Json::UInt(u))
        } else {
            Err(self.err_at(
                start,
                format!("integer literal `{literal}` is out of range"),
            ))
        }
    }
}

/// 1-based (line, column) of byte offset `pos`, counting columns in
/// characters.
fn locate(text: &str, pos: usize) -> (usize, usize) {
    let mut line = 1;
    let mut column = 1;
    for (i, c) in text.char_indices() {
        if i >= pos {
            break;
        }
        if c == '\n' {
            line += 1;
            column = 1;
        } else {
            column += 1;
        }
    }
    (line, column)
}

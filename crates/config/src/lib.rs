//! The workspace (de)serialization subsystem: a JSON value model, a
//! strict parser, and the [`ToConfig`] / [`FromConfig`] traits that
//! campaign files, engine specs, and solver configs go through.
//!
//! This crate is std-only and dependency-free. The vendored `serde`
//! facade re-exports everything here and its derive macros emit impls
//! of these traits, so the workspace-wide
//! `#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]`
//! attribute surface is the way most types participate.
//!
//! # The on-disk format
//!
//! Config files are strict JSON, pretty-printed by [`Json::render`]
//! with 2-space indentation and a trailing newline. The mapping from
//! Rust types is:
//!
//! - **structs** → objects keyed by field name, fields in declaration
//!   order: `{"bits": 8, "v_range": 1.0}`;
//! - **enums** → externally tagged: a unit variant is its name as a
//!   string (`"Halves"`), a variant with a payload is a single-key
//!   object (`{"FixedPoint": {"bits": 8}}`,
//!   `{"Searched": {"imbalance_weight": 1.0}}`);
//! - **`Option<T>`** struct fields → omitted when `None` (an explicit
//!   `null` also decodes as `None`);
//! - **numbers** → integers render without a decimal point; `f64`s
//!   render in shortest-round-trip form (always carrying a `.` or an
//!   exponent), and parse back to identical bits. Non-finite floats
//!   render as `null` — construct through [`Json::num`] so the
//!   in-memory value agrees.
//!
//! # Strictness
//!
//! [`Json::parse`] rejects duplicate keys, trailing garbage, nesting
//! past [`Json::MAX_DEPTH`], malformed numbers and escapes — each with
//! the offending line/column ([`ParseError`]). Decoding rejects
//! unknown fields, missing fields, and unknown variant tags with
//! errors that name the offender, list the known alternatives, and
//! carry the path from the document root ([`ConfigError`]), so a
//! misspelled key deep inside a campaign file is reported where it
//! sits. Domain validation stays with the owning types: decoded specs
//! are re-validated through their builders (`SolverConfig::builder()`,
//! `EngineSpec::build`) before use.
//!
//! ```
//! use amc_config::{FromConfig, Json, ToConfig};
//!
//! let value = Json::parse("{\n  \"threshold\": 0.5,\n  \"retries\": 3\n}").unwrap();
//! assert_eq!(value.render(), "{\n  \"threshold\": 0.5,\n  \"retries\": 3\n}\n");
//! let retries = amc_config::decode::fields(&value, "Example", &["threshold", "retries"])
//!     .and_then(|f| f.required::<usize>("retries"))
//!     .unwrap();
//! assert_eq!(retries, 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decode;
mod error;
mod parse;
mod traits;
mod value;

pub use error::{ConfigError, ParseError};
pub use traits::{FromConfig, ToConfig};
pub use value::{write_json, Json};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip_through_text() {
        for (text, value) in [
            ("null\n", Json::Null),
            ("true\n", Json::Bool(true)),
            ("false\n", Json::Bool(false)),
            ("0\n", Json::Int(0)),
            ("-3\n", Json::Int(-3)),
            ("9223372036854775807\n", Json::Int(i64::MAX)),
            ("-9223372036854775808\n", Json::Int(i64::MIN)),
            (
                "9223372036854775808\n",
                Json::UInt(9_223_372_036_854_775_808),
            ),
            ("18446744073709551615\n", Json::UInt(u64::MAX)),
            ("0.5\n", Json::Num(0.5)),
            ("1e-9\n", Json::Num(1e-9)),
            ("\"hi\"\n", Json::Str("hi".to_string())),
        ] {
            let parsed = Json::parse(text).unwrap();
            assert_eq!(parsed, value, "{text:?}");
            assert_eq!(parsed.render(), text, "{text:?}");
        }
    }

    #[test]
    fn floats_parse_back_to_identical_bits() {
        for x in [
            0.1,
            1.0 / 3.0,
            6.02e23,
            -1.6e-19,
            f64::MIN_POSITIVE,
            f64::MAX,
            -f64::MAX,
            5e-324,
        ] {
            let rendered = Json::Num(x).render();
            let Json::Num(back) = Json::parse(&rendered).unwrap() else {
                panic!("{rendered:?} did not parse as Num");
            };
            assert_eq!(back.to_bits(), x.to_bits(), "{rendered:?}");
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let value = Json::obj([
            ("name", Json::from("depth sweep")),
            ("trials", Json::Int(10)),
            ("weights", Json::Arr(vec![Json::Num(0.25), Json::Num(1e-3)])),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
            ("nested", Json::obj([("flag", Json::Bool(false))])),
            ("nothing", Json::Null),
        ]);
        let text = value.render();
        assert_eq!(Json::parse(&text).unwrap(), value);
        // Render→parse→render is a fixed point (format stability).
        assert_eq!(Json::parse(&text).unwrap().render(), text);
    }

    #[test]
    fn strings_with_escapes_round_trip() {
        for s in [
            "plain",
            "quote \" backslash \\ slash /",
            "newline\ntab\tcr\r",
            "control \u{1} \u{1f}",
            "unicode é ☃ 𝄞",
            "",
        ] {
            let value = Json::Str(s.to_string());
            assert_eq!(Json::parse(&value.render()).unwrap(), value, "{s:?}");
        }
    }

    #[test]
    fn unicode_escapes_and_surrogate_pairs_decode() {
        assert_eq!(
            Json::parse("\"\\u0041\\u00e9\\u2603\"").unwrap(),
            Json::Str("Aé☃".to_string())
        );
        // 𝄞 (U+1D11E) as a surrogate pair.
        assert_eq!(
            Json::parse("\"\\ud834\\udd1e\"").unwrap(),
            Json::Str("𝄞".to_string())
        );
        assert!(Json::parse("\"\\ud834\"").is_err(), "lone high surrogate");
        assert!(Json::parse("\"\\udd1e\"").is_err(), "lone low surrogate");
        assert!(Json::parse("\"\\ud834\\u0041\"").is_err(), "bad pair");
    }

    #[test]
    fn json_num_normalizes_non_finite_to_null() {
        // Satellite pin: the emitter renders non-finite Num as null;
        // Json::num normalizes at construction so parse(render(x))
        // is total on everything built through it.
        assert_eq!(Json::num(f64::NAN), Json::Null);
        assert_eq!(Json::num(f64::INFINITY), Json::Null);
        assert_eq!(Json::num(f64::NEG_INFINITY), Json::Null);
        assert_eq!(Json::num(0.5), Json::Num(0.5));
        assert_eq!(Json::from(f64::NAN), Json::Null);
        assert_eq!(Json::from(Some(f64::NAN)), Json::Null);
        // The raw variant still renders null (legacy constructors), and
        // that rendering parses back to the normalized value.
        assert_eq!(Json::Num(f64::NAN).render(), "null\n");
        assert_eq!(
            Json::parse(&Json::Num(f64::NAN).render()).unwrap(),
            Json::num(f64::NAN)
        );
    }

    #[test]
    fn duplicate_keys_are_rejected_with_position() {
        let err = Json::parse("{\n  \"a\": 1,\n  \"a\": 2\n}").unwrap_err();
        assert_eq!((err.line, err.column), (3, 3));
        assert!(err.message.contains("duplicate key"), "{err}");
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let err = Json::parse("{} x").unwrap_err();
        assert!(err.message.contains("trailing"), "{err}");
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("null null").is_err());
    }

    #[test]
    fn depth_limit_is_enforced() {
        let deep_ok = format!("{}0{}", "[".repeat(127), "]".repeat(127));
        assert!(Json::parse(&deep_ok).is_ok());
        let too_deep = format!("{}0{}", "[".repeat(200), "]".repeat(200));
        let err = Json::parse(&too_deep).unwrap_err();
        assert!(err.message.contains("depth"), "{err}");
    }

    #[test]
    fn malformed_numbers_are_rejected() {
        for text in [
            "01",
            "-",
            "1.",
            ".5",
            "1e",
            "1e+",
            "+1",
            "NaN",
            "Infinity",
            "0x10",
            "1.2.3",
            "--1",
            "1e999",
            "18446744073709551616",
        ] {
            assert!(Json::parse(text).is_err(), "{text:?} should not parse");
        }
    }

    #[test]
    fn malformed_structure_is_rejected() {
        for text in [
            "",
            " ",
            "{",
            "}",
            "[",
            "]",
            "[1,",
            "[1,]",
            "{\"a\"}",
            "{\"a\":}",
            "{\"a\":1,}",
            "{a: 1}",
            "{\"a\" 1}",
            "tru",
            "nul",
            "\"open",
            "\"bad \\q escape\"",
            "\"ctrl \u{1}\"",
            "\"\\u12\"",
            "[1 2]",
        ] {
            assert!(Json::parse(text).is_err(), "{text:?} should not parse");
        }
    }

    #[test]
    fn parse_errors_carry_line_and_column() {
        let err = Json::parse("{\n  \"a\": tru\n}").unwrap_err();
        assert_eq!((err.line, err.column), (2, 8));
        let rendered = err.to_string();
        assert!(rendered.contains("line 2"), "{rendered}");
        assert!(rendered.contains("column 8"), "{rendered}");
    }

    #[test]
    fn every_truncation_of_a_rendered_document_errors_cleanly() {
        // Mirror of the wire codec's truncation-fuzz suite: no prefix
        // of a valid document may parse, and none may panic.
        let value = Json::obj([
            ("name", Json::from("fuzz")),
            (
                "xs",
                Json::Arr(vec![Json::Num(0.5), Json::Int(-2), Json::Null]),
            ),
            ("nested", Json::obj([("s", Json::from("a\"b\\c\n𝄞"))])),
        ]);
        let text = value.render();
        let full = text.trim_end();
        for cut in 0..full.len() {
            if !full.is_char_boundary(cut) {
                continue;
            }
            assert!(
                Json::parse(&full[..cut]).is_err(),
                "prefix of length {cut} unexpectedly parsed"
            );
        }
        assert_eq!(Json::parse(full).unwrap(), value);
    }

    #[test]
    fn byte_noise_never_panics_the_parser() {
        // Deterministic xorshift noise over ASCII-ish documents.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let base = Json::obj([("k", Json::Arr(vec![Json::Int(1), Json::Num(2.5)]))]).render();
        for _ in 0..500 {
            let mut bytes = base.clone().into_bytes();
            let flips = (next() % 4) as usize + 1;
            for _ in 0..flips {
                let i = (next() as usize) % bytes.len();
                bytes[i] = (next() % 128) as u8;
            }
            if let Ok(text) = String::from_utf8(bytes) {
                let _ = Json::parse(&text);
            }
        }
    }

    #[test]
    fn primitive_decode_and_field_records() {
        let value = Json::parse("{\"count\": 3, \"scale\": 2.0, \"on\": true}").unwrap();
        let f = decode::fields(&value, "Demo", &["count", "scale", "on", "label"]).unwrap();
        assert_eq!(f.required::<usize>("count").unwrap(), 3);
        assert_eq!(f.required::<f64>("scale").unwrap(), 2.0);
        assert!(f.required::<bool>("on").unwrap());
        assert_eq!(f.optional::<String>("label").unwrap(), None);
        let missing = f.required::<String>("label").unwrap_err();
        assert!(missing.to_string().contains("label"), "{missing}");
    }

    #[test]
    fn unknown_fields_name_the_offender_and_list_known() {
        let value = Json::parse("{\"bitz\": 8}").unwrap();
        let err = decode::fields(&value, "Converter", &["bits", "v_range"]).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("bitz"), "{msg}");
        assert!(msg.contains("bits, v_range"), "{msg}");
        assert!(msg.contains("Converter"), "{msg}");
    }

    #[test]
    fn variant_dispatch_handles_all_shapes() {
        let unit = Json::parse("\"Halves\"").unwrap();
        assert_eq!(
            decode::variant(&unit, "SplitRule").unwrap(),
            ("Halves", None)
        );
        let tagged = Json::parse("{\"FixedPoint\": {\"bits\": 8}}").unwrap();
        let (tag, payload) = decode::variant(&tagged, "EngineSpec").unwrap();
        assert_eq!(tag, "FixedPoint");
        assert!(payload.is_some());
        let two_keys = Json::parse("{\"A\": 1, \"B\": 2}").unwrap();
        assert!(decode::variant(&two_keys, "E").is_err());
        assert!(decode::variant(&Json::Int(1), "E").is_err());
        assert!(decode::expect_unit(payload, "EngineSpec", "Numeric").is_err());
        assert!(decode::expect_payload(None, "EngineSpec", "FixedPoint").is_err());
        let unknown = decode::unknown_variant("EngineSpec", "Gpu", &["Numeric", "Blocked"]);
        let msg = unknown.to_string();
        assert!(
            msg.contains("Gpu") && msg.contains("Numeric, Blocked"),
            "{msg}"
        );
    }

    #[test]
    fn error_paths_compose_through_nesting() {
        let value =
            Json::parse("{\"solvers\": [{\"label\": \"d1\", \"weight\": \"heavy\"}]}").unwrap();
        let outer = decode::fields(&value, "Campaign", &["solvers"]).unwrap();
        let solvers = outer.get("solvers").unwrap();
        let Json::Arr(items) = solvers else { panic!() };
        let err = decode::fields(&items[0], "Solver", &["label", "weight"])
            .and_then(|f| f.required::<f64>("weight"))
            .map_err(|e| e.at_index(0).at("solvers"))
            .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("solvers[0].weight"), "{msg}");
    }

    #[test]
    fn integer_range_checks_apply() {
        assert!(u32::from_json(&Json::Int(-1)).is_err());
        assert!(u8::from_json(&Json::Int(256)).is_err());
        assert_eq!(u64::from_json(&Json::UInt(u64::MAX)).unwrap(), u64::MAX);
        assert!(i64::from_json(&Json::UInt(u64::MAX)).is_err());
        assert!(usize::from_json(&Json::Num(1.5)).is_err());
        // Round-trip across the ToConfig/FromConfig pair.
        assert_eq!(u64::from_json(&u64::MAX.to_json()).unwrap(), u64::MAX);
        assert_eq!(i64::from_json(&(-7i64).to_json()).unwrap(), -7);
    }

    #[test]
    fn option_encodes_null_and_decodes_absent_or_null() {
        assert_eq!(None::<f64>.to_json(), Json::Null);
        assert_eq!(Some(0.5f64).to_json(), Json::Num(0.5));
        assert_eq!(Option::<f64>::from_json(&Json::Null).unwrap(), None);
        assert_eq!(
            Option::<f64>::from_json(&Json::Num(0.5)).unwrap(),
            Some(0.5)
        );
    }
}

//! Decode helpers shared by the derive macro and hand-written
//! [`FromConfig`] impls: strict field records and
//! externally-tagged enum dispatch.

use crate::error::ConfigError;
use crate::traits::FromConfig;
use crate::value::Json;

/// Validates that `value` is an object whose keys are a subset of
/// `known` (no duplicates), and returns a field accessor.
///
/// `ty` names the Rust type being decoded and appears in every error.
///
/// # Errors
///
/// [`ConfigError::Type`] when `value` is not an object;
/// [`ConfigError::UnknownField`] naming the offending key and listing
/// the known ones; [`ConfigError::Invalid`] on duplicate keys (the
/// strict parser already rejects those, but values can also be built
/// in memory).
pub fn fields<'a>(
    value: &'a Json,
    ty: &'static str,
    known: &'static [&'static str],
) -> Result<Fields<'a>, ConfigError> {
    let Json::Obj(pairs) = value else {
        return Err(ConfigError::mismatch(format!("an object ({ty})"), value));
    };
    for (i, (key, _)) in pairs.iter().enumerate() {
        if !known.contains(&key.as_str()) {
            return Err(ConfigError::UnknownField {
                path: String::new(),
                ty,
                field: key.clone(),
                known: known.join(", "),
            });
        }
        if pairs[..i].iter().any(|(k, _)| k == key) {
            return Err(ConfigError::invalid(format!(
                "duplicate field `{key}` for {ty}"
            )));
        }
    }
    Ok(Fields { ty, pairs })
}

/// A validated view of an object's fields (see [`fields`]).
#[derive(Debug)]
pub struct Fields<'a> {
    ty: &'static str,
    pairs: &'a [(String, Json)],
}

impl Fields<'_> {
    /// The raw value of field `name`, if present.
    pub fn get(&self, name: &str) -> Option<&Json> {
        self.pairs.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// Decodes required field `name`.
    ///
    /// # Errors
    ///
    /// [`ConfigError::Missing`] when absent; decode errors are prefixed
    /// with the field name.
    pub fn required<T: FromConfig>(&self, name: &'static str) -> Result<T, ConfigError> {
        match self.get(name) {
            Some(value) => T::from_json(value).map_err(|e| e.at(name)),
            None => Err(ConfigError::Missing {
                path: String::new(),
                ty: self.ty,
                field: name,
            }),
        }
    }

    /// Decodes optional field `name`: absent or `null` is `None`.
    ///
    /// # Errors
    ///
    /// Decode errors for a present non-null value, prefixed with the
    /// field name.
    pub fn optional<T: FromConfig>(&self, name: &'static str) -> Result<Option<T>, ConfigError> {
        match self.get(name) {
            None | Some(Json::Null) => Ok(None),
            Some(value) => T::from_json(value).map(Some).map_err(|e| e.at(name)),
        }
    }
}

/// Splits an externally-tagged enum value into `(tag, payload)`: a
/// string is a unit-variant tag with no payload; a single-key object is
/// a tag with a payload.
///
/// # Errors
///
/// [`ConfigError`] when `value` is neither form.
pub fn variant<'a>(
    value: &'a Json,
    ty: &'static str,
) -> Result<(&'a str, Option<&'a Json>), ConfigError> {
    match value {
        Json::Str(tag) => Ok((tag.as_str(), None)),
        Json::Obj(pairs) if pairs.len() == 1 => Ok((pairs[0].0.as_str(), Some(&pairs[0].1))),
        Json::Obj(_) => Err(ConfigError::invalid(format!(
            "a {ty} variant with a payload must be a single-key object"
        ))),
        other => Err(ConfigError::mismatch(
            format!("a string or single-key object ({ty} variant)"),
            other,
        )),
    }
}

/// Asserts that unit variant `ty::tag` came without a payload.
///
/// # Errors
///
/// [`ConfigError::Invalid`] when a payload is present.
pub fn expect_unit(
    payload: Option<&Json>,
    ty: &'static str,
    tag: &'static str,
) -> Result<(), ConfigError> {
    match payload {
        None => Ok(()),
        Some(_) => Err(ConfigError::invalid(format!(
            "{ty} variant `{tag}` takes no payload; write it as the string \"{tag}\""
        ))),
    }
}

/// Extracts the payload of non-unit variant `ty::tag`.
///
/// # Errors
///
/// [`ConfigError::Invalid`] when the variant was written as a bare
/// string.
pub fn expect_payload<'a>(
    payload: Option<&'a Json>,
    ty: &'static str,
    tag: &'static str,
) -> Result<&'a Json, ConfigError> {
    payload.ok_or_else(|| {
        ConfigError::invalid(format!(
            "{ty} variant `{tag}` requires a payload: {{\"{tag}\": …}}"
        ))
    })
}

/// An unknown-variant error listing the known tags, mirroring the
/// engine registry's `UnknownEngine` style.
pub fn unknown_variant(ty: &'static str, tag: &str, known: &'static [&'static str]) -> ConfigError {
    ConfigError::UnknownVariant {
        path: String::new(),
        ty,
        variant: tag.to_string(),
        known: known.join(", "),
    }
}

//! Error types: positioned text-level [`ParseError`] and path-carrying
//! value-level [`ConfigError`].

use crate::value::Json;

/// A text-level parse failure with 1-based line/column positioning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending character.
    pub line: usize,
    /// 1-based column (in characters) of the offending character.
    pub column: usize,
    /// What went wrong at that position.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "line {}, column {}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// A value-level decode failure.
///
/// Decode helpers prefix errors with the path from the document root to
/// the offending value (e.g. `solvers[2].config.stages`), so a
/// misspelled field deep inside a campaign file is reported where it
/// sits. Unknown fields and variants name the offender and list the
/// known alternatives, mirroring the engine registry's `UnknownEngine`
/// style.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The text was not valid JSON.
    Parse(ParseError),
    /// A value had the wrong JSON kind.
    Type {
        /// Dotted path from the document root (empty at the root).
        path: String,
        /// What the decoder wanted, e.g. `an object (SolverConfig)`.
        expected: String,
        /// The kind actually found, e.g. `a string`.
        found: &'static str,
    },
    /// A required field was absent.
    Missing {
        /// Dotted path of the enclosing object.
        path: String,
        /// The Rust type being decoded.
        ty: &'static str,
        /// The missing field name.
        field: &'static str,
    },
    /// A field name the type does not have.
    UnknownField {
        /// Dotted path of the enclosing object.
        path: String,
        /// The Rust type being decoded.
        ty: &'static str,
        /// The unrecognized field name.
        field: String,
        /// Comma-separated field names the type does have.
        known: String,
    },
    /// An enum tag no variant matches.
    UnknownVariant {
        /// Dotted path of the enclosing value.
        path: String,
        /// The Rust enum being decoded.
        ty: &'static str,
        /// The unrecognized variant tag.
        variant: String,
        /// Comma-separated tags the enum does have.
        known: String,
    },
    /// A structurally valid value that fails domain validation (builder
    /// or registry rejection, out-of-range numbers, …).
    Invalid {
        /// Dotted path of the offending value.
        path: String,
        /// The validation failure.
        message: String,
    },
}

impl ConfigError {
    /// A kind-mismatch error at the current (empty) path.
    pub fn mismatch(expected: impl Into<String>, found: &Json) -> ConfigError {
        ConfigError::Type {
            path: String::new(),
            expected: expected.into(),
            found: found.kind(),
        }
    }

    /// A domain-validation error at the current (empty) path.
    pub fn invalid(message: impl Into<String>) -> ConfigError {
        ConfigError::Invalid {
            path: String::new(),
            message: message.into(),
        }
    }

    /// Returns the error with `segment.` prefixed onto its path, for
    /// decoders descending into named fields. Parse errors are
    /// positioned by line/column instead and pass through unchanged.
    #[must_use]
    pub fn at(mut self, segment: &str) -> ConfigError {
        if let Some(path) = self.path_mut() {
            *path = if path.is_empty() {
                segment.to_string()
            } else if path.starts_with('[') {
                format!("{segment}{path}")
            } else {
                format!("{segment}.{path}")
            };
        }
        self
    }

    /// Returns the error with `[index]` prefixed onto its path, for
    /// decoders descending into array elements.
    #[must_use]
    pub fn at_index(mut self, index: usize) -> ConfigError {
        if let Some(path) = self.path_mut() {
            *path = if path.is_empty() {
                format!("[{index}]")
            } else if path.starts_with('[') {
                format!("[{index}]{path}")
            } else {
                format!("[{index}].{path}")
            };
        }
        self
    }

    fn path_mut(&mut self) -> Option<&mut String> {
        match self {
            ConfigError::Parse(_) => None,
            ConfigError::Type { path, .. }
            | ConfigError::Missing { path, .. }
            | ConfigError::UnknownField { path, .. }
            | ConfigError::UnknownVariant { path, .. }
            | ConfigError::Invalid { path, .. } => Some(path),
        }
    }
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let at = |path: &str| {
            if path.is_empty() {
                String::new()
            } else {
                format!(" at `{path}`")
            }
        };
        match self {
            ConfigError::Parse(e) => write!(f, "{e}"),
            ConfigError::Type {
                path,
                expected,
                found,
            } => {
                write!(f, "expected {expected}, found {found}{}", at(path))
            }
            ConfigError::Missing { path, ty, field } => {
                write!(f, "missing field `{field}` for {ty}{}", at(path))
            }
            ConfigError::UnknownField {
                path,
                ty,
                field,
                known,
            } => {
                write!(
                    f,
                    "unknown field `{field}` for {ty}{} (known: {known})",
                    at(path)
                )
            }
            ConfigError::UnknownVariant {
                path,
                ty,
                variant,
                known,
            } => {
                write!(
                    f,
                    "unknown {ty} variant `{variant}`{} (known: {known})",
                    at(path)
                )
            }
            ConfigError::Invalid { path, message } => {
                write!(f, "invalid value{}: {message}", at(path))
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl From<ParseError> for ConfigError {
    fn from(e: ParseError) -> ConfigError {
        ConfigError::Parse(e)
    }
}

//! The [`ToConfig`] / [`FromConfig`] traits and their impls for
//! primitives and standard containers.

use crate::error::ConfigError;
use crate::value::Json;

/// Types that can serialize themselves into a [`Json`] value.
///
/// Structs encode as field-name objects; enums encode externally
/// tagged (`"Variant"` for unit variants, `{"Variant": payload}`
/// otherwise); `Option` fields are omitted when `None`. The derive
/// macro in the vendored `serde` facade emits impls with exactly this
/// shape.
pub trait ToConfig {
    /// Serializes `self`.
    fn to_json(&self) -> Json;
}

/// Types that can deserialize themselves from a [`Json`] value.
///
/// Decoders are strict: unknown fields, missing fields, and unknown
/// variant tags are errors that name the offender and list the known
/// alternatives (see [`ConfigError`]).
pub trait FromConfig: Sized {
    /// Deserializes a value of `Self` from `value`.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] describing the first kind mismatch, missing or
    /// unknown field, unknown variant, or domain-validation failure,
    /// with the path from the decode root.
    fn from_json(value: &Json) -> Result<Self, ConfigError>;
}

impl ToConfig for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromConfig for Json {
    fn from_json(value: &Json) -> Result<Self, ConfigError> {
        Ok(value.clone())
    }
}

impl ToConfig for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromConfig for bool {
    fn from_json(value: &Json) -> Result<Self, ConfigError> {
        match value {
            Json::Bool(b) => Ok(*b),
            other => Err(ConfigError::mismatch("a bool", other)),
        }
    }
}

impl ToConfig for f64 {
    fn to_json(&self) -> Json {
        Json::num(*self)
    }
}

impl FromConfig for f64 {
    fn from_json(value: &Json) -> Result<Self, ConfigError> {
        match value {
            Json::Num(x) => Ok(*x),
            Json::Int(i) => Ok(*i as f64),
            Json::UInt(u) => Ok(*u as f64),
            other => Err(ConfigError::mismatch("a number", other)),
        }
    }
}

impl ToConfig for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromConfig for String {
    fn from_json(value: &Json) -> Result<Self, ConfigError> {
        match value {
            Json::Str(s) => Ok(s.clone()),
            other => Err(ConfigError::mismatch("a string", other)),
        }
    }
}

fn integer_from_json(value: &Json, expected: &'static str) -> Result<i128, ConfigError> {
    match value {
        Json::Int(i) => Ok(i128::from(*i)),
        Json::UInt(u) => Ok(i128::from(*u)),
        other => Err(ConfigError::mismatch(expected, other)),
    }
}

macro_rules! impl_integer {
    ($($t:ty),* $(,)?) => {$(
        impl ToConfig for $t {
            fn to_json(&self) -> Json {
                match i64::try_from(*self) {
                    Ok(i) => Json::Int(i),
                    // Only reachable for u64/usize values above
                    // i64::MAX, which the cast preserves.
                    Err(_) => Json::UInt(*self as u64),
                }
            }
        }

        impl FromConfig for $t {
            fn from_json(value: &Json) -> Result<Self, ConfigError> {
                let wide = integer_from_json(value, concat!("an integer (", stringify!($t), ")"))?;
                <$t>::try_from(wide).map_err(|_| {
                    ConfigError::invalid(format!(
                        "integer {wide} is out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_integer!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: ToConfig> ToConfig for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToConfig::to_json).collect())
    }
}

impl<T: FromConfig> FromConfig for Vec<T> {
    fn from_json(value: &Json) -> Result<Self, ConfigError> {
        let Json::Arr(items) = value else {
            return Err(ConfigError::mismatch("an array", value));
        };
        items
            .iter()
            .enumerate()
            .map(|(i, item)| T::from_json(item).map_err(|e| e.at_index(i)))
            .collect()
    }
}

impl<T: ToConfig> ToConfig for Option<T> {
    fn to_json(&self) -> Json {
        self.as_ref().map_or(Json::Null, ToConfig::to_json)
    }
}

impl<T: FromConfig> FromConfig for Option<T> {
    fn from_json(value: &Json) -> Result<Self, ConfigError> {
        match value {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

//! # amc-par — minimal scoped work-stealing thread pool
//!
//! The BlockAMC workloads this workspace parallelizes are
//! *embarrassingly parallel once each worker owns its own programmed
//! arrays*: independent right-hand-side shards of a batch solve, and
//! independent device-variation trials of a Monte-Carlo yield run. This
//! crate provides the one scheduling primitive both need — a scoped,
//! std-only work-stealing pool — without pulling a threadpool
//! dependency into the offline build.
//!
//! ## Design
//!
//! * **Scoped**: workers are [`std::thread::scope`] threads, so jobs
//!   may borrow from the caller's stack (matrices, configurations,
//!   reference solutions) without `'static` bounds or `Arc` plumbing.
//! * **Work-stealing**: jobs are dealt round-robin onto one deque per
//!   worker. A worker pops from the *front* of its own deque and, when
//!   empty, steals from the *back* of a victim's — the classic
//!   Chase–Lev discipline (here with a `Mutex<VecDeque>` per worker,
//!   which is plenty for the coarse, milliseconds-per-job granularity
//!   of analog solver shards).
//! * **Index-preserving**: every job carries its input index and the
//!   results are reassembled in input order, so callers observe a plain
//!   `map` regardless of which worker ran what when.
//!
//! ## Determinism contract
//!
//! The pool itself adds no nondeterminism: scheduling decides *where*
//! a job runs, never *what* it computes. A caller whose jobs are pure
//! functions of `(index, item)` — the per-shard RNG-stream pattern used
//! by `blockamc::montecarlo` — gets bit-identical output at any worker
//! count, including the inlined `workers == 1` path.
//!
//! ## Example
//!
//! ```
//! let squares = amc_par::map_indexed(4, (0..100u64).collect(), |_, x| x * x);
//! assert_eq!(squares[7], 49);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::sync::Mutex;

/// The number of workers worth spawning on this host (`1` when the
/// runtime cannot tell). Callers may always request more or fewer.
pub fn available_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// One deque of `(index, item)` jobs per worker, dealt round-robin.
struct JobQueues<T> {
    queues: Vec<Mutex<VecDeque<(usize, T)>>>,
}

impl<T> JobQueues<T> {
    fn deal(workers: usize, items: Vec<T>) -> Self {
        let mut queues: Vec<VecDeque<(usize, T)>> = (0..workers).map(|_| VecDeque::new()).collect();
        for (idx, item) in items.into_iter().enumerate() {
            queues[idx % workers].push_back((idx, item));
        }
        JobQueues {
            queues: queues.into_iter().map(Mutex::new).collect(),
        }
    }

    /// Pops the next job for worker `w`: front of its own deque first,
    /// then the back of each victim's, scanning round-robin from `w+1`.
    /// `None` means every deque was observed empty — and since jobs
    /// never enqueue new jobs, that worker is done.
    fn next_job(&self, w: usize) -> Option<(usize, T)> {
        let own = self.queues[w]
            .lock()
            .expect("job queue poisoned")
            .pop_front();
        if own.is_some() {
            return own;
        }
        let n = self.queues.len();
        for offset in 1..n {
            let victim = (w + offset) % n;
            let stolen = self.queues[victim]
                .lock()
                .expect("job queue poisoned")
                .pop_back();
            if stolen.is_some() {
                return stolen;
            }
        }
        None
    }
}

/// Reassembles `(index, result)` pairs into input order.
fn merge<R>(len: usize, collected: Vec<Vec<(usize, R)>>) -> Vec<R> {
    let mut slots: Vec<Option<R>> = (0..len).map(|_| None).collect();
    for (idx, r) in collected.into_iter().flatten() {
        debug_assert!(slots[idx].is_none(), "job {idx} executed twice");
        slots[idx] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every job executes exactly once"))
        .collect()
}

/// Parallel index-preserving map: applies `f(index, item)` to every
/// item across `workers` work-stealing threads and returns the results
/// in input order.
///
/// `workers` is clamped to at least 1 and at most `items.len()`; with
/// one worker (or zero/one items) everything runs inline on the calling
/// thread. A panicking job propagates its panic to the caller after the
/// scope unwinds the remaining workers.
pub fn map_indexed<T, R, F>(workers: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let workers = workers.max(1).min(items.len().max(1));
    if workers == 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(idx, item)| f(idx, item))
            .collect();
    }
    let len = items.len();
    let queues = JobQueues::deal(workers, items);
    let f = &f;
    let queues = &queues;
    let collected = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    let mut local = Vec::new();
                    while let Some((idx, item)) = queues.next_job(w) {
                        local.push((idx, f(idx, item)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(local) => local,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect::<Vec<_>>()
    });
    merge(len, collected)
}

/// Parallel map over jobs that need **worker-owned mutable state** —
/// the sharded-solver pattern: worker *w* exclusively owns `states[w]`
/// (e.g. a replicated, independently-programmed solver instance) and
/// every job it executes, its own or stolen, runs against that state.
///
/// One worker thread is spawned per state; results come back in input
/// order. With a single state (or zero/one items) everything runs
/// inline on the calling thread against `states[0]`.
///
/// The states are borrowed mutably rather than consumed so callers can
/// inspect them afterwards (per-worker cost counters, RNG positions).
///
/// # Panics
///
/// Panics if `states` is empty, or — propagated — if a job panics.
pub fn map_with_states<S, T, R, F>(states: &mut [S], items: Vec<T>, f: F) -> Vec<R>
where
    S: Send,
    T: Send,
    R: Send,
    F: Fn(&mut S, usize, T) -> R + Sync,
{
    assert!(
        !states.is_empty(),
        "map_with_states needs at least one state"
    );
    if states.len() == 1 || items.len() <= 1 {
        let state = &mut states[0];
        return items
            .into_iter()
            .enumerate()
            .map(|(idx, item)| f(state, idx, item))
            .collect();
    }
    let workers = states.len().min(items.len());
    let len = items.len();
    let queues = JobQueues::deal(workers, items);
    let f = &f;
    let queues = &queues;
    let collected = std::thread::scope(|scope| {
        let handles: Vec<_> = states
            .iter_mut()
            .take(workers)
            .enumerate()
            .map(|(w, state)| {
                scope.spawn(move || {
                    let mut local = Vec::new();
                    while let Some((idx, item)) = queues.next_job(w) {
                        local.push((idx, f(state, idx, item)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(local) => local,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect::<Vec<_>>()
    });
    merge(len, collected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_preserves_input_order() {
        for workers in [1, 2, 4, 7] {
            let out = map_indexed(workers, (0..53usize).collect(), |idx, x| {
                assert_eq!(idx, x);
                x * 3
            });
            assert_eq!(out, (0..53).map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn output_is_identical_at_any_worker_count() {
        let reference = map_indexed(1, (0..40u64).collect(), |_, x| x.wrapping_mul(0x9E37));
        for workers in [2, 3, 4, 8] {
            let out = map_indexed(workers, (0..40u64).collect(), |_, x| x.wrapping_mul(0x9E37));
            assert_eq!(out, reference, "workers={workers}");
        }
    }

    #[test]
    fn skewed_work_is_stolen() {
        // One pathological job; the other workers must drain the rest.
        let slow_hits = AtomicUsize::new(0);
        let out = map_indexed(4, (0..32u32).collect(), |_, x| {
            if x == 0 {
                slow_hits.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(30));
            }
            x + 1
        });
        assert_eq!(out, (1..=32).collect::<Vec<_>>());
        assert_eq!(slow_hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        assert_eq!(map_indexed(16, vec![5u8, 6], |_, x| x), vec![5, 6]);
        assert_eq!(map_indexed(4, Vec::<u8>::new(), |_, x| x), Vec::<u8>::new());
        assert_eq!(map_indexed(0, vec![1u8], |_, x| x + 1), vec![2]);
    }

    #[test]
    fn states_are_worker_exclusive_and_all_jobs_run() {
        let mut states = vec![0usize; 4];
        let out = map_with_states(&mut states, (0..64usize).collect(), |count, _, x| {
            *count += 1;
            x
        });
        assert_eq!(out, (0..64).collect::<Vec<_>>());
        // Every job ran exactly once, wherever it was stolen to.
        assert_eq!(states.iter().sum::<usize>(), 64);
    }

    #[test]
    fn single_state_runs_inline() {
        let mut states = vec![String::new()];
        let out = map_with_states(&mut states, vec![1, 2, 3], |s, idx, x| {
            s.push('x');
            idx + x
        });
        assert_eq!(out, vec![1, 3, 5]);
        assert_eq!(states[0], "xxx");
    }

    #[test]
    #[should_panic(expected = "at least one state")]
    fn empty_states_rejected() {
        let mut states: Vec<u8> = Vec::new();
        let _ = map_with_states(&mut states, vec![1], |_, _, x: i32| x);
    }

    #[test]
    fn job_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            map_indexed(2, (0..8u32).collect(), |_, x| {
                assert!(x != 5, "boom");
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn jobs_borrow_from_the_caller_stack() {
        // The scoped pool's point: no 'static, no Arc.
        let table: Vec<f64> = (0..10).map(|i| i as f64 * 0.5).collect();
        let out = map_indexed(3, (0..10usize).collect(), |_, i| table[i] * 2.0);
        assert_eq!(out, (0..10).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    fn available_workers_is_positive() {
        assert!(available_workers() >= 1);
    }
}

//! Hierarchical span tracing: sessions, per-worker recorders, and the
//! drained [`Trace`].

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default per-lane event capacity. Spans past this bound are counted
/// (see [`Trace::dropped`]) rather than recorded, keeping memory bounded
/// for long-running sessions.
const DEFAULT_LANE_CAPACITY: usize = 1 << 16;

/// One completed span: a named, nested interval on a worker's timeline.
///
/// Timestamps are nanoseconds since the owning [`TraceSession`]'s epoch
/// (the instant the session was created), read from the monotonic clock
/// only at span entry and exit.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Static span name, e.g. `"solve"` or `"engine.inv"`.
    pub name: &'static str,
    /// Worker lane the span was recorded on (0-based, per session).
    pub worker: u32,
    /// Nanoseconds from session epoch to span entry.
    pub start_ns: u64,
    /// Nanoseconds from session epoch to span exit. `end_ns >= start_ns`.
    pub end_ns: u64,
    /// Nesting depth at entry (0 = top-level span on this lane).
    pub depth: u16,
    /// Optional numeric annotations attached at exit, e.g. op counts.
    pub args: Vec<(&'static str, f64)>,
}

impl SpanEvent {
    /// Span duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// A per-worker event lane. Owned exclusively by one [`Recorder`] while
/// live; flushed into the session when the recorder drops.
#[derive(Debug)]
struct Lane {
    worker: u32,
    events: Vec<SpanEvent>,
    dropped: u64,
}

#[derive(Debug)]
struct SessionInner {
    t0: Instant,
    lane_capacity: usize,
    next_worker: AtomicU32,
    flushed: Mutex<Vec<Lane>>,
}

/// A tracing session: the epoch clock plus the collection point for
/// per-worker lanes.
///
/// Cheap to clone (`Arc` inside). Hand out one [`Recorder`] per worker
/// via [`TraceSession::recorder`]; recorders flush their lanes back here
/// on drop (or [`Recorder::flush`]), and [`TraceSession::drain`] merges
/// everything flushed so far into a [`Trace`].
#[derive(Debug, Clone)]
pub struct TraceSession {
    inner: Arc<SessionInner>,
}

impl TraceSession {
    /// New session with the default per-lane capacity.
    pub fn new() -> Self {
        Self::with_lane_capacity(DEFAULT_LANE_CAPACITY)
    }

    /// New session bounding each worker lane to `capacity` events; spans
    /// recorded past the bound are dropped and counted.
    pub fn with_lane_capacity(capacity: usize) -> Self {
        TraceSession {
            inner: Arc::new(SessionInner {
                t0: Instant::now(),
                lane_capacity: capacity.max(1),
                next_worker: AtomicU32::new(0),
                flushed: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Hand out an enabled recorder on a fresh worker lane.
    pub fn recorder(&self) -> Recorder {
        let worker = self.inner.next_worker.fetch_add(1, Ordering::Relaxed);
        Recorder(Some(Box::new(RecorderInner {
            session: Arc::clone(&self.inner),
            lane: Lane {
                worker,
                events: Vec::new(),
                dropped: 0,
            },
            depth: 0,
        })))
    }

    /// Merge all lanes flushed so far into a [`Trace`], clearing them
    /// from the session. Live recorders that have not yet dropped or
    /// [`Recorder::flush`]ed are *not* included.
    pub fn drain(&self) -> Trace {
        let mut lanes = {
            let mut guard = self.inner.flushed.lock().expect("trace session poisoned");
            std::mem::take(&mut *guard)
        };
        let mut events = Vec::new();
        let mut dropped = 0u64;
        for lane in &mut lanes {
            events.append(&mut lane.events);
            dropped = dropped.saturating_add(lane.dropped);
        }
        events.sort_by(|a, b| {
            (a.worker, a.start_ns, a.depth, std::cmp::Reverse(a.end_ns)).cmp(&(
                b.worker,
                b.start_ns,
                b.depth,
                std::cmp::Reverse(b.end_ns),
            ))
        });
        Trace { events, dropped }
    }
}

impl Default for TraceSession {
    fn default() -> Self {
        Self::new()
    }
}

/// Token returned by [`Recorder::enter`]; pass it back to
/// [`Recorder::exit`] to close the span.
///
/// The token carries the entry depth, so exiting restores nesting even
/// if inner spans were abandoned on an early-return path (self-healing:
/// abandoned inner spans are simply never recorded).
#[derive(Debug)]
#[must_use = "pass the token back to Recorder::exit to close the span"]
pub struct SpanToken {
    name: &'static str,
    start_ns: u64,
    depth: u16,
    live: bool,
}

#[derive(Debug)]
struct RecorderInner {
    session: Arc<SessionInner>,
    lane: Lane,
    depth: u16,
}

/// Span recorder handle for one worker.
///
/// The enabled recorder owns its event lane exclusively — appends take
/// no locks and read the monotonic clock only in [`Recorder::enter`] /
/// [`Recorder::exit`]. The disabled recorder ([`Recorder::disabled`],
/// also `Default`) is a `None` branch behind `#[inline]` methods: no
/// clock reads, no allocation, zero cost.
///
/// `Clone` *forks*: cloning an enabled recorder opens a fresh worker
/// lane on the same session (so cloning a solver replica per worker
/// automatically yields per-worker lanes); cloning a disabled recorder
/// stays disabled.
#[derive(Debug)]
pub struct Recorder(Option<Box<RecorderInner>>);

impl Recorder {
    /// The no-op recorder: records nothing, costs nothing.
    #[inline]
    pub fn disabled() -> Self {
        Recorder(None)
    }

    /// Whether spans are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Open a span. Pair with [`Recorder::exit`].
    #[inline]
    pub fn enter(&mut self, name: &'static str) -> SpanToken {
        match &mut self.0 {
            None => SpanToken {
                name,
                start_ns: 0,
                depth: 0,
                live: false,
            },
            Some(inner) => {
                let start_ns = elapsed_ns(inner.session.t0);
                let depth = inner.depth;
                inner.depth = inner.depth.saturating_add(1);
                SpanToken {
                    name,
                    start_ns,
                    depth,
                    live: true,
                }
            }
        }
    }

    /// Close a span with no annotations.
    #[inline]
    pub fn exit(&mut self, token: SpanToken) {
        self.exit_with(token, &[]);
    }

    /// Close a span, attaching numeric annotations (e.g. op counts
    /// folded in from engine stats deltas).
    #[inline]
    pub fn exit_with(&mut self, token: SpanToken, args: &[(&'static str, f64)]) {
        if !token.live {
            return;
        }
        if let Some(inner) = &mut self.0 {
            let end_ns = elapsed_ns(inner.session.t0);
            // Restore depth from the token: inner spans abandoned on an
            // early-return path are healed rather than corrupting nesting.
            inner.depth = token.depth;
            if inner.lane.events.len() < inner.session.lane_capacity {
                inner.lane.events.push(SpanEvent {
                    name: token.name,
                    worker: inner.lane.worker,
                    start_ns: token.start_ns,
                    end_ns,
                    depth: token.depth,
                    args: args.to_vec(),
                });
            } else {
                inner.lane.dropped = inner.lane.dropped.saturating_add(1);
            }
        }
    }

    /// Flush this lane's events back to the session now (normally done
    /// on drop), keeping the recorder usable on the same worker lane.
    pub fn flush(&mut self) {
        if let Some(inner) = &mut self.0 {
            if inner.lane.events.is_empty() && inner.lane.dropped == 0 {
                return;
            }
            let lane = Lane {
                worker: inner.lane.worker,
                events: std::mem::take(&mut inner.lane.events),
                dropped: std::mem::replace(&mut inner.lane.dropped, 0),
            };
            inner
                .session
                .flushed
                .lock()
                .expect("trace session poisoned")
                .push(lane);
        }
    }
}

impl Clone for Recorder {
    fn clone(&self) -> Self {
        match &self.0 {
            None => Recorder::disabled(),
            Some(inner) => TraceSession {
                inner: Arc::clone(&inner.session),
            }
            .recorder(),
        }
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::disabled()
    }
}

impl Drop for Recorder {
    fn drop(&mut self) {
        self.flush();
    }
}

#[inline]
fn elapsed_ns(t0: Instant) -> u64 {
    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// A drained, merged set of span events, sorted by worker then start
/// time (outer spans before the inner spans they contain).
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    pub(crate) events: Vec<SpanEvent>,
    pub(crate) dropped: u64,
}

impl Trace {
    /// Build a trace directly from events (primarily for tests and
    /// golden pins); sorts into canonical order.
    pub fn from_events(mut events: Vec<SpanEvent>) -> Self {
        events.sort_by(|a, b| {
            (a.worker, a.start_ns, a.depth, std::cmp::Reverse(a.end_ns)).cmp(&(
                b.worker,
                b.start_ns,
                b.depth,
                std::cmp::Reverse(b.end_ns),
            ))
        });
        Trace { events, dropped: 0 }
    }

    /// The recorded spans in canonical order.
    pub fn events(&self) -> &[SpanEvent] {
        &self.events
    }

    /// Number of spans dropped because a lane hit its capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total duration attributed to `name` across all workers, in
    /// nanoseconds. Nested self-calls both count, so prefer leaf span
    /// names for timing attribution.
    pub fn total_ns(&self, name: &str) -> u64 {
        self.events
            .iter()
            .filter(|e| e.name == name)
            .fold(0u64, |acc, e| acc.saturating_add(e.duration_ns()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let mut rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        let t = rec.enter("x");
        rec.exit_with(t, &[("n", 1.0)]);
        let fork = rec.clone();
        assert!(!fork.is_enabled());
        // Default is the disabled recorder.
        assert!(!Recorder::default().is_enabled());
    }

    #[test]
    fn nested_spans_round_trip() {
        let session = TraceSession::new();
        let mut rec = session.recorder();
        let outer = rec.enter("outer");
        let inner = rec.enter("inner");
        rec.exit_with(inner, &[("ops", 3.0)]);
        rec.exit(outer);
        drop(rec);

        let trace = session.drain();
        assert_eq!(trace.events().len(), 2);
        assert_eq!(trace.dropped(), 0);
        let outer_ev = &trace.events()[0];
        let inner_ev = &trace.events()[1];
        assert_eq!(outer_ev.name, "outer");
        assert_eq!(outer_ev.depth, 0);
        assert_eq!(inner_ev.name, "inner");
        assert_eq!(inner_ev.depth, 1);
        assert_eq!(inner_ev.args, vec![("ops", 3.0)]);
        // Containment: the outer interval covers the inner one.
        assert!(outer_ev.start_ns <= inner_ev.start_ns);
        assert!(outer_ev.end_ns >= inner_ev.end_ns);
    }

    #[test]
    fn abandoned_inner_span_heals_depth() {
        let session = TraceSession::new();
        let mut rec = session.recorder();
        let outer = rec.enter("outer");
        let _abandoned = rec.enter("abandoned"); // never exited (early return)
        rec.exit(outer);
        let sibling = rec.enter("sibling");
        rec.exit(sibling);
        drop(rec);

        let trace = session.drain();
        let names: Vec<_> = trace.events().iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["outer", "sibling"]);
        assert_eq!(trace.events()[1].depth, 0, "depth restored after exit");
    }

    #[test]
    fn lane_capacity_bounds_memory_and_counts_drops() {
        let session = TraceSession::with_lane_capacity(2);
        let mut rec = session.recorder();
        for _ in 0..5 {
            let t = rec.enter("s");
            rec.exit(t);
        }
        drop(rec);
        let trace = session.drain();
        assert_eq!(trace.events().len(), 2);
        assert_eq!(trace.dropped(), 3);
    }

    #[test]
    fn clone_forks_a_fresh_worker_lane() {
        let session = TraceSession::new();
        let mut a = session.recorder();
        let mut b = a.clone();
        let ta = a.enter("a");
        a.exit(ta);
        let tb = b.enter("b");
        b.exit(tb);
        drop(a);
        drop(b);
        let trace = session.drain();
        let workers: std::collections::BTreeSet<_> =
            trace.events().iter().map(|e| e.worker).collect();
        assert_eq!(workers.len(), 2, "each clone records on its own lane");
    }

    #[test]
    fn flush_keeps_recorder_usable_and_drain_clears() {
        let session = TraceSession::new();
        let mut rec = session.recorder();
        let t = rec.enter("first");
        rec.exit(t);
        rec.flush();
        assert_eq!(session.drain().events().len(), 1);
        assert_eq!(session.drain().events().len(), 0, "drain clears");
        let t = rec.enter("second");
        rec.exit(t);
        drop(rec);
        assert_eq!(session.drain().events().len(), 1);
    }
}

//! Trace export: Chrome trace-event JSON (Perfetto-loadable) and a text
//! flame tree.

use crate::span::{SpanEvent, Trace};

/// Export surface over a drained [`Trace`].
///
/// Thin by design: it borrows the trace and renders it. Both formats are
/// deterministic functions of the event list, which is what the golden
/// schema pin in the test suite relies on.
#[derive(Debug)]
pub struct TraceSink<'a> {
    trace: &'a Trace,
}

impl<'a> TraceSink<'a> {
    /// Wrap a drained trace for export.
    pub fn new(trace: &'a Trace) -> Self {
        TraceSink { trace }
    }

    /// Render Chrome trace-event JSON; see [`Trace::chrome_trace_json`].
    pub fn chrome_trace_json(&self) -> String {
        self.trace.chrome_trace_json()
    }

    /// Render the text flame tree; see [`Trace::flame_tree`].
    pub fn flame_tree(&self) -> String {
        self.trace.flame_tree()
    }
}

impl Trace {
    /// Export as Chrome trace-event JSON (the "JSON Array Format" with
    /// `"X"` complete events), loadable in Perfetto or `chrome://tracing`.
    ///
    /// One event per span: `ts`/`dur` are microseconds from the session
    /// epoch, `pid` is always 1, `tid` is the worker lane, and span
    /// annotations land in `args`.
    pub fn chrome_trace_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 96);
        out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n{\"name\":\"");
            escape_json_into(ev.name, &mut out);
            out.push_str("\",\"cat\":\"amc\",\"ph\":\"X\",\"ts\":");
            push_us(ev.start_ns, &mut out);
            out.push_str(",\"dur\":");
            push_us(ev.duration_ns(), &mut out);
            out.push_str(",\"pid\":1,\"tid\":");
            out.push_str(&ev.worker.to_string());
            out.push_str(",\"args\":{");
            for (j, (key, value)) in ev.args.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push('"');
                escape_json_into(key, &mut out);
                out.push_str("\":");
                push_json_number(*value, &mut out);
            }
            out.push_str("}}");
        }
        out.push_str("\n]}\n");
        out
    }

    /// Render a text flame tree: per worker, spans nested by interval
    /// containment, aggregated by name path with call counts and total
    /// durations.
    pub fn flame_tree(&self) -> String {
        let mut out = String::new();
        let mut worker_ids: Vec<u32> = self.events.iter().map(|e| e.worker).collect();
        worker_ids.dedup();
        for worker in worker_ids {
            let mut root = FlameNode::default();
            let mut stack: Vec<(&SpanEvent, Vec<usize>)> = Vec::new();
            for ev in self.events.iter().filter(|e| e.worker == worker) {
                while let Some((top, _)) = stack.last() {
                    if ev.start_ns >= top.end_ns {
                        stack.pop();
                    } else {
                        break;
                    }
                }
                let parent_path = stack.last().map(|(_, p)| p.clone()).unwrap_or_default();
                let path = root.add(&parent_path, ev);
                stack.push((ev, path));
            }
            out.push_str(&format!("worker {worker}\n"));
            root.render(1, &mut out);
        }
        if self.dropped > 0 {
            out.push_str(&format!("({} span(s) dropped at capacity)\n", self.dropped));
        }
        out
    }
}

/// Aggregation node for the flame tree: children keyed by span name in
/// first-seen order.
#[derive(Debug, Default)]
struct FlameNode {
    children: Vec<(String, FlameStats, FlameNode)>,
}

#[derive(Debug, Default)]
struct FlameStats {
    calls: u64,
    total_ns: u64,
}

impl FlameNode {
    /// Record `ev` under the child chain addressed by `parent_path`
    /// (indices into successive `children` vectors); returns the path of
    /// the node the event landed on.
    fn add(&mut self, parent_path: &[usize], ev: &SpanEvent) -> Vec<usize> {
        let mut node = self;
        for &idx in parent_path {
            node = &mut node.children[idx].2;
        }
        let idx = match node
            .children
            .iter()
            .position(|(name, _, _)| name == ev.name)
        {
            Some(idx) => idx,
            None => {
                node.children.push((
                    ev.name.to_string(),
                    FlameStats::default(),
                    FlameNode::default(),
                ));
                node.children.len() - 1
            }
        };
        let stats = &mut node.children[idx].1;
        stats.calls = stats.calls.saturating_add(1);
        stats.total_ns = stats.total_ns.saturating_add(ev.duration_ns());
        let mut path = parent_path.to_vec();
        path.push(idx);
        path
    }

    fn render(&self, indent: usize, out: &mut String) {
        for (name, stats, child) in &self.children {
            out.push_str(&format!(
                "{:indent$}{name:<24} {:>8} call(s) {:>12.3} ms\n",
                "",
                stats.calls,
                stats.total_ns as f64 / 1e6,
                indent = indent * 2,
            ));
            child.render(indent + 1, out);
        }
    }
}

/// Append `ns` as microseconds with fixed 3-decimal precision (exact for
/// integer nanoseconds).
fn push_us(ns: u64, out: &mut String) {
    out.push_str(&(ns / 1000).to_string());
    out.push('.');
    out.push_str(&format!("{:03}", ns % 1000));
}

fn push_json_number(v: f64, out: &mut String) {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            out.push_str(&format!("{}", v as i64));
        } else {
            out.push_str(&format!("{v}"));
        }
    } else {
        // JSON has no Inf/NaN; null is the conventional stand-in.
        out.push_str("null");
    }
}

fn escape_json_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::span::{SpanEvent, Trace};
    use crate::TraceSink;

    fn ev(
        name: &'static str,
        worker: u32,
        start_ns: u64,
        end_ns: u64,
        depth: u16,
        args: Vec<(&'static str, f64)>,
    ) -> SpanEvent {
        SpanEvent {
            name,
            worker,
            start_ns,
            end_ns,
            depth,
            args,
        }
    }

    #[test]
    fn chrome_json_shape() {
        let trace = Trace::from_events(vec![
            ev("solve", 0, 1_000, 9_500, 0, vec![("inv_ops", 3.0)]),
            ev("engine.inv", 0, 2_000, 4_000, 1, vec![]),
        ]);
        let json = trace.chrome_trace_json();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
        assert!(json.contains("\"name\":\"solve\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":1.000"));
        assert!(json.contains("\"dur\":8.500"));
        assert!(json.contains("\"args\":{\"inv_ops\":3}"));
        assert!(json.contains("\"tid\":0"));
        assert!(json.trim_end().ends_with("]}"));
        // Sink facade renders identically.
        assert_eq!(TraceSink::new(&trace).chrome_trace_json(), json);
    }

    #[test]
    fn flame_tree_nests_by_containment() {
        let trace = Trace::from_events(vec![
            ev("solve", 0, 0, 100, 0, vec![]),
            ev("inv", 0, 10, 40, 1, vec![]),
            ev("inv", 0, 50, 90, 1, vec![]),
            ev("mvm", 0, 92, 99, 1, vec![]),
            ev("solve", 1, 0, 50, 0, vec![]),
        ]);
        let tree = trace.flame_tree();
        assert!(tree.contains("worker 0"));
        assert!(tree.contains("worker 1"));
        // Two inv calls aggregate under one line below solve.
        let inv_line = tree
            .lines()
            .find(|l| l.trim_start().starts_with("inv"))
            .expect("inv line");
        assert!(inv_line.contains("2 call(s)"));
        // inv/mvm are indented deeper than solve.
        let solve_indent = tree
            .lines()
            .find(|l| l.contains("solve"))
            .map(|l| l.len() - l.trim_start().len())
            .unwrap();
        let inv_indent = inv_line.len() - inv_line.trim_start().len();
        assert!(inv_indent > solve_indent);
        assert_eq!(TraceSink::new(&trace).flame_tree(), tree);
    }

    #[test]
    fn json_escapes_and_non_finite_args() {
        let trace = Trace::from_events(vec![ev(
            "weird\"name\\",
            0,
            0,
            1,
            0,
            vec![("nan", f64::NAN), ("frac", 1.5)],
        )]);
        let json = trace.chrome_trace_json();
        assert!(json.contains("weird\\\"name\\\\"));
        assert!(json.contains("\"nan\":null"));
        assert!(json.contains("\"frac\":1.5"));
    }

    #[test]
    fn total_ns_aggregates_by_name() {
        let trace = Trace::from_events(vec![
            ev("inv", 0, 0, 10, 0, vec![]),
            ev("inv", 1, 5, 25, 0, vec![]),
            ev("mvm", 0, 10, 11, 0, vec![]),
        ]);
        assert_eq!(trace.total_ns("inv"), 30);
        assert_eq!(trace.total_ns("mvm"), 1);
        assert_eq!(trace.total_ns("absent"), 0);
    }
}

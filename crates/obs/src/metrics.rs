//! Metrics registry: named counters, gauges, and fixed-log-bucket
//! latency histograms with nearest-rank percentile extraction.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of sub-buckets per power of two in [`Histogram`].
const SUBS_PER_OCTAVE: u64 = 4;
/// Bucket count: 4 identity buckets for 0..=3 plus 4 sub-buckets for
/// each octave `[2^k, 2^(k+1))`, k = 2..=63.
const BUCKETS: usize = 252;

/// Saturating add on an atomic counter, with a debug assertion at the
/// boundary so overflow is loud in tests but safe in release.
fn saturating_fetch_add(cell: &AtomicU64, delta: u64) -> u64 {
    let prev = cell
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
            Some(v.saturating_add(delta))
        })
        .expect("fetch_update closure always returns Some");
    debug_assert!(
        prev.checked_add(delta).is_some(),
        "counter overflow: {prev} + {delta} saturated"
    );
    prev
}

/// Monotone event counter. Cloning shares the underlying cell.
///
/// Additions saturate at `u64::MAX` (asserting in debug builds) so a
/// runaway counter can never wrap around to a small value.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// New free-standing counter at zero (usually obtained from
    /// [`Registry::counter`] instead).
    pub fn new() -> Self {
        Self::default()
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `delta`, saturating at `u64::MAX`.
    #[inline]
    pub fn add(&self, delta: u64) {
        saturating_fetch_add(&self.0, delta);
    }

    /// Overwrite with an externally maintained total (used to mirror
    /// legacy counters into the registry).
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins instantaneous value (f64). Cloning shares the cell.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// New free-standing gauge at 0.0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the gauge.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramInner {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// Fixed-log-bucket histogram for latency-like `u64` samples.
///
/// Values 0..=3 get exact buckets; each octave `[2^k, 2^(k+1))` above
/// that is split into 4 sub-buckets, bounding relative error of the
/// reported percentile values to under 25% while keeping the histogram
/// a fixed 252 cells. Percentiles use the nearest-rank rule and report
/// the lower bound of the bucket holding that rank, so a sample set
/// whose ranks land on exact bucket bounds reports exact values.
///
/// Cloning shares the cells; recording is lock-free.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// New free-standing histogram (usually obtained from
    /// [`Registry::histogram`] instead).
    pub fn new() -> Self {
        Histogram(Arc::new(HistogramInner {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }))
    }

    /// Record one sample.
    pub fn record(&self, value: u64) {
        let inner = &self.0;
        saturating_fetch_add(&inner.buckets[bucket_index(value)], 1);
        saturating_fetch_add(&inner.count, 1);
        saturating_fetch_add(&inner.sum, value);
        inner.min.fetch_min(value, Ordering::Relaxed);
        inner.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Nearest-rank percentile (`p` in 0..=100); `None` when empty. The
    /// returned value is the lower bound of the bucket holding the rank.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let rank = ((p / 100.0) * count as f64).ceil().max(1.0) as u64;
        let rank = rank.min(count);
        let mut cumulative = 0u64;
        for (idx, bucket) in self.0.buckets.iter().enumerate() {
            cumulative = cumulative.saturating_add(bucket.load(Ordering::Relaxed));
            if cumulative >= rank {
                return Some(bucket_lower_bound(idx));
            }
        }
        Some(bucket_lower_bound(BUCKETS - 1))
    }

    /// Summarize count/min/max/mean and p50/p95/p99.
    pub fn summary(&self) -> HistogramSummary {
        let count = self.count();
        let sum = self.0.sum.load(Ordering::Relaxed);
        HistogramSummary {
            count,
            min: if count == 0 {
                0
            } else {
                self.0.min.load(Ordering::Relaxed)
            },
            max: self.0.max.load(Ordering::Relaxed),
            mean: if count == 0 {
                0.0
            } else {
                sum as f64 / count as f64
            },
            p50: self.percentile(50.0).unwrap_or(0),
            p95: self.percentile(95.0).unwrap_or(0),
            p99: self.percentile(99.0).unwrap_or(0),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Map a sample to its bucket. Monotone in `value`.
fn bucket_index(value: u64) -> usize {
    if value < SUBS_PER_OCTAVE {
        return value as usize;
    }
    let octave = 63 - value.leading_zeros() as u64; // >= 2
    let sub = (value >> (octave - 2)) & (SUBS_PER_OCTAVE - 1);
    (SUBS_PER_OCTAVE * (octave - 1) + sub) as usize
}

/// Smallest sample value mapping to bucket `idx` (inverse of
/// [`bucket_index`] on bucket lower bounds).
fn bucket_lower_bound(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUBS_PER_OCTAVE {
        return idx;
    }
    let octave = idx / SUBS_PER_OCTAVE + 1;
    let sub = idx % SUBS_PER_OCTAVE;
    let base = 1u64 << octave;
    base + sub * (base / SUBS_PER_OCTAVE)
}

/// Point-in-time summary of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// Sample count.
    pub count: u64,
    /// Smallest recorded sample (0 when empty).
    pub min: u64,
    /// Largest recorded sample (0 when empty).
    pub max: u64,
    /// Exact mean of recorded samples (0.0 when empty).
    pub mean: f64,
    /// Nearest-rank 50th percentile (bucket lower bound).
    pub p50: u64,
    /// Nearest-rank 95th percentile (bucket lower bound).
    pub p95: u64,
    /// Nearest-rank 99th percentile (bucket lower bound).
    pub p99: u64,
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// Value of one registry entry at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter total.
    Counter(u64),
    /// Gauge reading.
    Gauge(f64),
    /// Histogram summary.
    Histogram(HistogramSummary),
}

/// One named entry in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotEntry {
    /// Metric name.
    pub name: String,
    /// Value at snapshot time.
    pub value: MetricValue,
}

/// Sorted point-in-time view of a [`Registry`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    entries: Vec<SnapshotEntry>,
}

impl MetricsSnapshot {
    /// Entries sorted by name.
    pub fn entries(&self) -> &[SnapshotEntry] {
        &self.entries
    }

    /// Look up one entry by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .binary_search_by(|e| e.name.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i].value)
    }

    /// Convenience: counter total by name (0 when absent or non-counter).
    pub fn counter(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Render as an aligned text table, one metric per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for entry in &self.entries {
            match &entry.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("{:<40} {v}\n", entry.name));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("{:<40} {v:.6}\n", entry.name));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(
                        "{:<40} count={} min={} p50={} p95={} p99={} max={} mean={:.1}\n",
                        entry.name, h.count, h.min, h.p50, h.p95, h.p99, h.max, h.mean
                    ));
                }
            }
        }
        out
    }
}

/// Named metrics registry: get-or-create handles, snapshot the whole
/// surface sorted by name.
///
/// Cloning shares the registry. Handles are cheap to clone and update
/// lock-free; the registry lock is taken only on registration and
/// snapshot. Registering a name that already exists with a *different*
/// metric kind returns a fresh detached handle (recorded values go
/// nowhere) rather than panicking — misuse is surfaced by the absent
/// metric, not a crash in instrumentation code.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    metrics: Arc<Mutex<BTreeMap<String, Metric>>>,
}

impl Registry {
    /// New empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.metrics.lock().expect("metrics registry poisoned");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::new()))
        {
            Metric::Counter(c) => c.clone(),
            _ => Counter::new(),
        }
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.metrics.lock().expect("metrics registry poisoned");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::new()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => Gauge::new(),
        }
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.metrics.lock().expect("metrics registry poisoned");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new()))
        {
            Metric::Histogram(h) => h.clone(),
            _ => Histogram::new(),
        }
    }

    /// Snapshot every metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.metrics.lock().expect("metrics registry poisoned");
        let entries = map
            .iter()
            .map(|(name, metric)| SnapshotEntry {
                name: name.clone(),
                value: match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.summary()),
                },
            })
            .collect();
        MetricsSnapshot { entries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_inverts_on_lower_bounds() {
        let mut prev = 0usize;
        for v in 0..10_000u64 {
            let idx = bucket_index(v);
            assert!(idx >= prev, "monotone at {v}");
            prev = idx;
        }
        for idx in 0..BUCKETS {
            let low = bucket_lower_bound(idx);
            assert_eq!(bucket_index(low), idx, "lower bound of bucket {idx}");
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn golden_percentiles_uniform_1_to_100() {
        // 100 samples 1..=100. Nearest-rank p50 is the 50th sample
        // (value 50, bucket [48,56) -> 48); p95 is sample 95 (bucket
        // [80,96) -> 80); p99 is sample 99 (bucket [96,112) -> 96).
        let h = Histogram::new();
        for v in 1..=100 {
            h.record(v);
        }
        assert_eq!(h.percentile(50.0), Some(48));
        assert_eq!(h.percentile(95.0), Some(80));
        assert_eq!(h.percentile(99.0), Some(96));
        assert_eq!(h.percentile(100.0), Some(96), "max sample 100 in [96,112)");
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 100);
        assert!((s.mean - 50.5).abs() < 1e-12);
    }

    #[test]
    fn golden_percentiles_exact_on_bucket_bounds() {
        // All samples are exact bucket lower bounds, so every
        // percentile is exact.
        let h = Histogram::new();
        for _ in 0..10 {
            h.record(1024);
        }
        assert_eq!(h.percentile(50.0), Some(1024));
        assert_eq!(h.percentile(99.0), Some(1024));
        // Bimodal on bounds: 90 low + 10 high.
        let h = Histogram::new();
        for _ in 0..90 {
            h.record(2);
        }
        for _ in 0..10 {
            h.record(4096);
        }
        assert_eq!(h.percentile(50.0), Some(2));
        assert_eq!(h.percentile(90.0), Some(2));
        assert_eq!(h.percentile(95.0), Some(4096));
        assert_eq!(h.percentile(99.0), Some(4096));
    }

    #[test]
    fn percentile_edge_cases() {
        let h = Histogram::new();
        assert_eq!(h.percentile(50.0), None, "empty histogram");
        let s = h.summary();
        assert_eq!((s.count, s.min, s.max, s.p50), (0, 0, 0, 0));

        h.record(7);
        assert_eq!(h.percentile(0.0), Some(7), "single sample, p0");
        assert_eq!(h.percentile(50.0), Some(7), "single sample, p50");
        assert_eq!(h.percentile(100.0), Some(7), "single sample, p100");
        let s = h.summary();
        assert_eq!((s.min, s.max, s.p50, s.p99), (7, 7, 7, 7));
    }

    #[test]
    fn counter_and_gauge_basics() {
        let reg = Registry::new();
        let c = reg.counter("hits");
        c.inc();
        c.add(4);
        assert_eq!(reg.counter("hits").get(), 5, "handles share the cell");
        c.set(100);
        assert_eq!(c.get(), 100);

        let g = reg.gauge("depth");
        g.set(2.5);
        assert_eq!(reg.gauge("depth").get(), 2.5);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn counter_saturates_at_max_in_release() {
        let c = Counter::new();
        c.set(u64::MAX - 1);
        c.add(5);
        assert_eq!(c.get(), u64::MAX, "saturates instead of wrapping");
        c.inc();
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "counter overflow")]
    fn counter_overflow_asserts_in_debug() {
        let c = Counter::new();
        c.set(u64::MAX - 1);
        c.add(5);
    }

    #[test]
    fn counter_boundary_no_overflow_is_silent() {
        let c = Counter::new();
        c.set(u64::MAX - 5);
        c.add(5); // lands exactly on MAX without overflowing
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn registry_snapshot_is_sorted_and_queryable() {
        let reg = Registry::new();
        reg.counter("z_last").add(3);
        reg.gauge("a_first").set(1.0);
        reg.histogram("m_mid").record(10);
        let snap = reg.snapshot();
        let names: Vec<_> = snap.entries().iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["a_first", "m_mid", "z_last"]);
        assert_eq!(snap.counter("z_last"), 3);
        assert_eq!(snap.counter("absent"), 0);
        assert!(matches!(snap.get("a_first"), Some(MetricValue::Gauge(v)) if *v == 1.0));
        let rendered = snap.render();
        assert!(rendered.contains("z_last"));
        assert!(rendered.contains("count=1"));
    }

    #[test]
    fn kind_mismatch_returns_detached_handle() {
        let reg = Registry::new();
        reg.counter("x").add(2);
        let h = reg.histogram("x"); // wrong kind: detached
        h.record(5);
        assert_eq!(reg.snapshot().counter("x"), 2, "original untouched");
    }
}

//! `amc-obs`: structured tracing, metrics, and profiling hooks for the
//! BlockAMC reproduction stack.
//!
//! The crate is deliberately std-only so every layer of the workspace
//! (core solver, serve, scenario, bench) can depend on it without pulling
//! in a heavyweight tracing framework. It provides two pillars:
//!
//! 1. **Hierarchical span tracing** ([`TraceSession`] / [`Recorder`]).
//!    A session hands out per-worker recorders; each recorder owns its
//!    append-only event lane exclusively, so the hot path takes **no
//!    locks** and reads the monotonic clock only at span boundaries
//!    ([`Recorder::enter`] / [`Recorder::exit`]). Drained spans export as
//!    Chrome trace-event JSON (loadable in Perfetto / `chrome://tracing`)
//!    via [`Trace::chrome_trace_json`] or as a text flame tree via
//!    [`Trace::flame_tree`].
//!
//! 2. **A metrics registry** ([`Registry`]). Named [`Counter`]s,
//!    [`Gauge`]s, and fixed-log-bucket latency [`Histogram`]s with
//!    nearest-rank p50/p95/p99 extraction, snapshotted into one sorted,
//!    queryable surface.
//!
//! # Bit-identity guarantee
//!
//! Instrumentation is strictly read-only with respect to the numerics:
//! enabling tracing or metrics never changes what is computed, only what
//! is *observed*. Solves with tracing on are bit-identical to tracing
//! off at any worker count; the workspace pins this with proptests. The
//! disabled recorder ([`Recorder::disabled`]) is a `None` branch behind
//! `#[inline]` calls — no clock reads, no allocation, no atomics — so
//! leaving the hooks compiled in costs nothing when tracing is off.
//!
//! # Example
//!
//! ```
//! use amc_obs::{Registry, TraceSession};
//!
//! let session = TraceSession::new();
//! let mut rec = session.recorder();
//! let span = rec.enter("solve");
//! let inner = rec.enter("engine.inv");
//! rec.exit_with(inner, &[("n", 16.0)]);
//! rec.exit(span);
//! drop(rec); // flush the lane back to the session
//!
//! let trace = session.drain();
//! assert_eq!(trace.events().len(), 2);
//! let json = trace.chrome_trace_json();
//! assert!(json.contains("\"ph\":\"X\""));
//!
//! let reg = Registry::new();
//! reg.counter("requests").inc();
//! let hist = reg.histogram("latency_us");
//! hist.record(120);
//! hist.record(450);
//! let snap = reg.snapshot();
//! assert_eq!(snap.entries().len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metrics;
mod sink;
mod span;

pub use metrics::{
    Counter, Gauge, Histogram, HistogramSummary, MetricValue, MetricsSnapshot, Registry,
    SnapshotEntry,
};
pub use sink::TraceSink;
pub use span::{Recorder, SpanEvent, SpanToken, Trace, TraceSession};

//! Golden-file pin for the Chrome trace-event JSON schema.
//!
//! `chrome_trace_json` output must stay byte-stable for a fixed event
//! list: external tooling (Perfetto imports, trace diffing in CI
//! artifacts) depends on the exact field set and formatting. If this
//! test fails because the schema changed *intentionally*, regenerate
//! `tests/golden/chrome_trace.json` from the `expected()` events below
//! and update the README's Observability section.

use amc_obs::{SpanEvent, Trace};

fn golden_events() -> Vec<SpanEvent> {
    vec![
        SpanEvent {
            name: "prepare",
            worker: 0,
            start_ns: 0,
            end_ns: 125_000,
            depth: 0,
            args: vec![("n", 16.0)],
        },
        SpanEvent {
            name: "prepare.schur",
            worker: 0,
            start_ns: 10_500,
            end_ns: 60_250,
            depth: 1,
            args: vec![],
        },
        SpanEvent {
            name: "solve",
            worker: 0,
            start_ns: 130_000,
            end_ns: 310_999,
            depth: 0,
            args: vec![("inv_ops", 3.0), ("mvm_ops", 2.0)],
        },
        SpanEvent {
            name: "engine.inv",
            worker: 1,
            start_ns: 140_000,
            end_ns: 190_000,
            depth: 0,
            args: vec![("elapsed_s", 0.05)],
        },
    ]
}

#[test]
fn chrome_trace_json_matches_golden() {
    let trace = Trace::from_events(golden_events());
    let rendered = trace.chrome_trace_json();
    let golden = include_str!("golden/chrome_trace.json");
    assert_eq!(
        rendered, golden,
        "Chrome trace JSON schema drifted from the committed golden file"
    );
}

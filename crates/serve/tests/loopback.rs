//! Integration tests of the full served path over in-process loopback
//! transports (plus one TCP smoke test): protocol, cache behavior,
//! coalescing, backpressure, and clean shutdown.

use amc_linalg::Matrix;
use amc_serve::client::Client;
use amc_serve::loadgen::{workload_matrix, workload_rhs};
use amc_serve::server::{ServeAging, Server, ServerConfig};
use amc_serve::wire::{EngineRef, MatrixRef};
use amc_serve::ServeError;
use blockamc::aging::{AgingModel, DriftModel};
use blockamc::solver::SolverConfig;

fn quiet_config() -> SolverConfig {
    SolverConfig::builder()
        .capture_trace(false)
        .finish()
        .unwrap()
}

/// Aging so aggressive that a cached solver fails its health probe one
/// tick (= one dispatch round) after preparation.
fn fast_aging() -> ServeAging {
    ServeAging {
        model: AgingModel {
            drift: DriftModel {
                nu: 0.05,
                nu_sigma: 0.01,
                t0_s: 1.0,
            },
            tick_s: 100.0,
            ..AgingModel::typical_rram()
        },
        max_residual: 1e-6,
        seed: 17,
    }
}

#[test]
fn prepare_solve_evict_stats_lifecycle() {
    let server = Server::with_builtin_engines(ServerConfig::default());
    let mut client = Client::new(server.loopback());
    let config = quiet_config();
    let engine = EngineRef::new("numeric", 0);
    let a = workload_matrix(8, 1);

    let (fp, hit) = client.prepare(&a, &config, &engine).unwrap();
    assert_eq!(fp, a.fingerprint());
    assert!(!hit);
    // Preparing again is a pure cache hit.
    let (fp2, hit2) = client.prepare(&a, &config, &engine).unwrap();
    assert_eq!((fp2, hit2), (fp, true));

    let rhs = workload_rhs(8, 1, 0);
    let x = client
        .solve(MatrixRef::Cached(fp), &config, &engine, &rhs)
        .unwrap();
    assert_eq!(x.len(), 8);

    let stats = client.stats().unwrap();
    assert_eq!(stats.entries, 1);
    assert_eq!(stats.insertions, 1);
    assert!(stats.hits >= 2, "prepare-hit + solve-hit, got {stats:?}");
    assert_eq!(stats.solved_rhs, 1);

    assert!(client.evict(fp, &config, &engine).unwrap());
    assert!(!client.evict(fp, &config, &engine).unwrap());
    // Solving by fingerprint after eviction is NotPrepared.
    let err = client
        .solve(MatrixRef::Cached(fp), &config, &engine, &rhs)
        .unwrap_err();
    assert!(matches!(err, ServeError::NotPrepared { fingerprint } if fingerprint == fp));

    client.shutdown().unwrap();
    server.shutdown();
}

#[test]
fn metrics_registry_mirrors_stats_and_cache_counters() {
    let server = Server::with_builtin_engines(ServerConfig::default());
    let mut client = Client::new(server.loopback());
    let config = quiet_config();
    let engine = EngineRef::new("numeric", 0);
    let a = workload_matrix(8, 9);

    let (fp, _) = client.prepare(&a, &config, &engine).unwrap();
    for k in 0..3 {
        client
            .solve(
                MatrixRef::Cached(fp),
                &config,
                &engine,
                &workload_rhs(8, 9, k),
            )
            .unwrap();
    }

    let stats = client.stats().unwrap();
    let snap = server.metrics();
    // The registry is the same data the wire-level stats report, plus
    // the cache counters mirrored under their own names.
    assert_eq!(snap.counter("serve.requests"), stats.requests);
    assert_eq!(snap.counter("serve.solved_rhs"), stats.solved_rhs);
    assert_eq!(
        snap.counter("serve.dispatch_batches"),
        stats.dispatch_batches
    );
    assert_eq!(snap.counter("cache.hits"), stats.hits);
    assert_eq!(snap.counter("cache.misses"), stats.misses);
    assert_eq!(snap.counter("cache.insertions"), stats.insertions);
    assert_eq!(snap.counter("serve.busy_rejections"), 0);
    // Dispatch latency histogram saw exactly the solved batches.
    match snap.get("serve.dispatch_us") {
        Some(amc_obs::MetricValue::Histogram(h)) => {
            assert_eq!(h.count, stats.dispatch_batches);
        }
        other => panic!("serve.dispatch_us missing or mistyped: {other:?}"),
    }
    server.shutdown();
}

#[test]
fn inline_solve_prepares_on_first_sight() {
    let server = Server::with_builtin_engines(ServerConfig::default());
    let mut client = Client::new(server.loopback());
    let config = quiet_config();
    let engine = EngineRef::new("numeric", 0);
    let a = workload_matrix(8, 2);
    let rhs = workload_rhs(8, 2, 0);

    let x1 = client
        .solve(MatrixRef::Inline(a.clone()), &config, &engine, &rhs)
        .unwrap();
    // Second inline solve of the same matrix hits the cache.
    let x2 = client
        .solve(MatrixRef::Inline(a.clone()), &config, &engine, &rhs)
        .unwrap();
    assert_eq!(x1, x2);
    let stats = client.stats().unwrap();
    assert_eq!(stats.insertions, 1, "one prepare for two inline solves");
    assert!(stats.hits >= 1);
    server.shutdown();
}

#[test]
fn batch_solutions_come_back_in_order_and_match_singles() {
    let server = Server::with_builtin_engines(ServerConfig::default());
    let mut client = Client::new(server.loopback());
    let config = quiet_config();
    let engine = EngineRef::new("numeric", 3);
    let a = workload_matrix(12, 3);
    let (fp, _) = client.prepare(&a, &config, &engine).unwrap();

    let batch: Vec<Vec<f64>> = (0..5).map(|k| workload_rhs(12, 3, k)).collect();
    let xs = client
        .solve_batch(MatrixRef::Cached(fp), &config, &engine, batch.clone())
        .unwrap();
    assert_eq!(xs.len(), 5);
    for (k, rhs) in batch.iter().enumerate() {
        let single = client
            .solve(MatrixRef::Cached(fp), &config, &engine, rhs)
            .unwrap();
        assert_eq!(xs[k], single, "batch entry {k} diverged from single solve");
    }
    server.shutdown();
}

#[test]
fn distinct_engines_and_seeds_are_distinct_cache_entries() {
    let server = Server::with_builtin_engines(ServerConfig::default());
    let mut client = Client::new(server.loopback());
    let config = quiet_config();
    let a = workload_matrix(8, 4);

    client
        .prepare(&a, &config, &EngineRef::new("numeric", 0))
        .unwrap();
    client
        .prepare(&a, &config, &EngineRef::new("circuit", 0))
        .unwrap();
    client
        .prepare(&a, &config, &EngineRef::new("circuit", 1))
        .unwrap();
    assert_eq!(client.stats().unwrap().entries, 3);

    // Same key with same circuit seed is deterministic: bit-identical
    // results across evict + re-prepare.
    let engine = EngineRef::new("circuit", 0);
    let fp = a.fingerprint();
    let rhs = workload_rhs(8, 4, 0);
    let x1 = client
        .solve(MatrixRef::Cached(fp), &config, &engine, &rhs)
        .unwrap();
    client.evict(fp, &config, &engine).unwrap();
    client.prepare(&a, &config, &engine).unwrap();
    let x2 = client
        .solve(MatrixRef::Cached(fp), &config, &engine, &rhs)
        .unwrap();
    assert_eq!(x1, x2, "registry build from a seed must replay bitwise");
    server.shutdown();
}

#[test]
fn unknown_engine_and_bad_matrix_are_remote_errors() {
    let server = Server::with_builtin_engines(ServerConfig::default());
    let mut client = Client::new(server.loopback());
    let config = quiet_config();
    let a = workload_matrix(8, 5);

    let err = client
        .prepare(&a, &config, &EngineRef::new("warp-drive", 0))
        .unwrap_err();
    assert!(matches!(err, ServeError::Remote(_)), "{err}");

    // Non-square inline matrix: rejected by prepare, not a panic.
    let rect = Matrix::from_vec(2, 3, vec![0.0; 6]).unwrap();
    let err = client
        .solve(
            MatrixRef::Inline(rect),
            &config,
            &EngineRef::new("numeric", 0),
            &[1.0, 2.0],
        )
        .unwrap_err();
    assert!(matches!(err, ServeError::Remote(_)), "{err}");
    server.shutdown();
}

#[test]
fn lfu_cache_capacity_is_respected_under_request_churn() {
    let server = Server::with_builtin_engines(ServerConfig {
        cache_capacity: 2,
        ..ServerConfig::default()
    });
    let mut client = Client::new(server.loopback());
    let config = quiet_config();
    let engine = EngineRef::new("numeric", 0);

    for seed in 0..5 {
        client
            .prepare(&workload_matrix(8, seed), &config, &engine)
            .unwrap();
        assert!(client.stats().unwrap().entries <= 2);
    }
    let stats = client.stats().unwrap();
    assert_eq!(stats.entries, 2);
    assert_eq!(stats.insertions, 5);
    assert_eq!(stats.evictions, 3);
    server.shutdown();
}

#[test]
fn saturated_queue_returns_busy_instead_of_hanging() {
    // solver_workers: 0 is the documented accept-only mode — jobs
    // queue but never drain, so the queue's fill level is fully
    // deterministic: no race against a draining worker.
    let server = Server::with_builtin_engines(ServerConfig {
        solver_workers: 0,
        queue_capacity: 3,
        ..ServerConfig::default()
    });
    let config = quiet_config();
    let engine = EngineRef::new("numeric", 0);
    let a = workload_matrix(8, 6);
    let mut setup = Client::new(server.loopback());
    let (fp, _) = setup.prepare(&a, &config, &engine).unwrap();

    // Fill the queue exactly to capacity with blocking solves.
    let fillers: Vec<_> = (0..3)
        .map(|k| {
            let transport = server.loopback();
            let config = config.clone();
            let engine = engine.clone();
            std::thread::spawn(move || {
                let mut client = Client::new(transport);
                let rhs = workload_rhs(8, 6, k);
                client.solve(MatrixRef::Cached(fp), &config, &engine, &rhs)
            })
        })
        .collect();
    // Wait until all three right-hand sides are queued — with no
    // workers the fill level only rises, so this is deterministic.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while server.queued_rhs() < 3 {
        assert!(
            std::time::Instant::now() < deadline,
            "fillers never queued their solves"
        );
        std::thread::sleep(std::time::Duration::from_millis(2));
    }

    // The fourth RHS must be rejected with Busy — immediately, not
    // after a timeout, and without being queued.
    let rhs = workload_rhs(8, 6, 99);
    let err = setup
        .solve(MatrixRef::Cached(fp), &config, &engine, &rhs)
        .unwrap_err();
    assert!(matches!(err, ServeError::Busy), "{err}");
    assert_eq!(
        server.queued_rhs(),
        3,
        "the rejected request was not queued"
    );
    assert_eq!(
        server.metrics().counter("serve.busy_rejections"),
        1,
        "the rejection must land in the metrics registry"
    );

    // Shutdown drains the queued jobs with errors: the blocked filler
    // clients unblock instead of hanging forever.
    server.shutdown();
    for filler in fillers {
        let result = filler.join().unwrap();
        assert!(
            matches!(result, Err(ServeError::Closed)),
            "filler should unblock with Closed, got {result:?}"
        );
    }
}

#[test]
fn concurrent_same_key_requests_coalesce_into_shared_batches() {
    // One slow-ish dispatcher + many concurrent clients on one key:
    // while the first batch solves, the rest pile up and must ship as
    // shared batches (coalescing factor > 1), bit-identical to serial.
    let server = Server::with_builtin_engines(ServerConfig {
        solver_workers: 1,
        queue_capacity: 1024,
        ..ServerConfig::default()
    });
    let config = quiet_config();
    let engine = EngineRef::new("numeric", 0);
    let n = 48;
    let a = workload_matrix(n, 7);
    let mut setup = Client::new(server.loopback());
    let (fp, _) = setup.prepare(&a, &config, &engine).unwrap();

    let clients = 8;
    let per_client = 6;
    let results: Vec<Vec<(u64, Vec<f64>)>> = std::thread::scope(|scope| {
        (0..clients)
            .map(|c| {
                let transport = server.loopback();
                let config = &config;
                let engine = &engine;
                scope.spawn(move || {
                    let mut client = Client::new(transport);
                    (0..per_client)
                        .map(|k| {
                            let id = (c * per_client + k) as u64;
                            let rhs = workload_rhs(n, 7, id);
                            let x = client
                                .solve(MatrixRef::Cached(fp), config, engine, &rhs)
                                .unwrap();
                            (id, x)
                        })
                        .collect()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });

    let stats = server.stats();
    assert_eq!(stats.solved_rhs, (clients * per_client) as u64);
    assert!(
        stats.dispatch_batches < stats.coalesced_requests,
        "expected coalescing: {} batches for {} requests",
        stats.dispatch_batches,
        stats.coalesced_requests
    );

    // Every solution is bit-identical to a direct serial solve.
    let mut direct = Client::new(server.loopback());
    for (id, x) in results.into_iter().flatten() {
        let expected = direct
            .solve(
                MatrixRef::Cached(fp),
                &config,
                &engine,
                &workload_rhs(n, 7, id),
            )
            .unwrap();
        assert_eq!(x, expected, "request {id}");
    }
    server.shutdown();
}

#[test]
fn capacity_and_staleness_evictions_are_counted_separately() {
    let server = Server::with_builtin_engines(ServerConfig {
        cache_capacity: 2,
        aging: Some(fast_aging()),
        ..ServerConfig::default()
    });
    let mut client = Client::new(server.loopback());
    let config = quiet_config();
    let engine = EngineRef::new("numeric", 0);
    let a = workload_matrix(8, 21);
    let (fp, _) = client.prepare(&a, &config, &engine).unwrap();
    let rhs = workload_rhs(8, 21, 0);

    // First solve serves the fresh entry (age 0), then advances its
    // clock; the second finds it past max_residual with no degraded
    // opt-in, so the dispatcher staleness-evicts and re-prepares.
    for _ in 0..2 {
        let (_, degraded) = client
            .solve_accepting(MatrixRef::Cached(fp), &config, &engine, &rhs, false)
            .unwrap();
        assert!(!degraded, "without the opt-in nothing may be degraded");
    }
    // The re-prepared entry is written back after the reply is sent
    // (serve-then-age), so poll briefly for the settled state.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let stats = loop {
        let stats = client.stats().unwrap();
        if stats.entries == 1 || std::time::Instant::now() >= deadline {
            break stats;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    };
    assert_eq!(stats.staleness_evictions, 1, "{stats:?}");
    assert_eq!(stats.evictions, 0, "staleness must not count as capacity");
    assert_eq!(stats.entries, 1, "the re-prepared entry is back in place");

    // Now overflow the 2-slot cache with fresh keys: LFU capacity
    // evictions land in the other counter.
    for seed in 30..33 {
        client
            .prepare(&workload_matrix(8, seed), &config, &engine)
            .unwrap();
    }
    let stats = client.stats().unwrap();
    assert!(stats.evictions >= 2, "capacity churn must evict: {stats:?}");
    assert_eq!(stats.staleness_evictions, 1, "{stats:?}");
    server.shutdown();
}

#[test]
fn degraded_optin_serves_stale_without_evicting() {
    let server = Server::with_builtin_engines(ServerConfig {
        aging: Some(fast_aging()),
        ..ServerConfig::default()
    });
    let mut client = Client::new(server.loopback());
    let config = quiet_config();
    let engine = EngineRef::new("numeric", 0);
    let a = workload_matrix(8, 22);
    let (fp, _) = client.prepare(&a, &config, &engine).unwrap();

    // Age the entry past the health threshold (request 1 is fresh).
    let rhs = workload_rhs(8, 22, 0);
    let (fresh_x, degraded) = client
        .solve_accepting(MatrixRef::Cached(fp), &config, &engine, &rhs, true)
        .unwrap();
    assert!(!degraded, "the first request sees an age-0 solver");

    // Request 2 opts in: the stale solver is served flagged, kept in
    // the cache, and the answer differs from the fresh one (the arrays
    // really drifted).
    let (stale_x, degraded) = client
        .solve_accepting(MatrixRef::Cached(fp), &config, &engine, &rhs, true)
        .unwrap();
    assert!(degraded, "opt-in must surface the degraded flag");
    assert_ne!(stale_x, fresh_x, "a drifted solver must answer differently");

    let stats = client.stats().unwrap();
    assert_eq!(stats.degraded_served, 1, "{stats:?}");
    assert_eq!(stats.staleness_evictions, 0, "{stats:?}");
    assert_eq!(stats.entries, 1);
    server.shutdown();
}

#[test]
fn tcp_transport_round_trips_through_a_real_socket() {
    let server = Server::with_builtin_engines(ServerConfig::default());
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let acceptor = {
        let server = server.clone();
        std::thread::spawn(move || server.serve_tcp(listener))
    };

    let config = quiet_config();
    let engine = EngineRef::new("numeric", 0);
    let a = workload_matrix(16, 8);
    let rhs = workload_rhs(16, 8, 0);

    let mut tcp_client = Client::connect(addr).unwrap();
    let (fp, _) = tcp_client.prepare(&a, &config, &engine).unwrap();
    let x_tcp = tcp_client
        .solve(MatrixRef::Cached(fp), &config, &engine, &rhs)
        .unwrap();

    // Bit-identical to the loopback path: the transport is invisible.
    let mut loop_client = Client::new(server.loopback());
    let x_loop = loop_client
        .solve(MatrixRef::Cached(fp), &config, &engine, &rhs)
        .unwrap();
    assert_eq!(x_tcp, x_loop);

    tcp_client.shutdown().unwrap();
    server.shutdown();
    acceptor.join().unwrap().unwrap();
}

//! Capacity-bounded LFU cache for prepared solvers.
//!
//! Frequency-bucket design: entries live in a slab, each entry linked
//! into a doubly-linked list of its **frequency bucket** (all entries
//! fetched the same number of times). A fetch unlinks the entry from
//! bucket `f` and pushes it onto the head of bucket `f + 1`; eviction
//! pops the **tail** of the minimum-frequency bucket. Both are a fixed
//! number of pointer updates plus one hash-map lookup — O(1) touch and
//! O(1) evict, no heaps, no rebalancing.
//!
//! Tie-breaking is least-recently-*touched* within a bucket: new and
//! re-bumped entries enter at the head, so the tail of the minimum
//! bucket is the coldest entry by (frequency, recency) — classic
//! LFU-with-LRU-tie-break semantics.
//!
//! The cache also owns the hit/miss/eviction/insertion counters that
//! [`Stats`](crate::wire::Request::Stats) reports: they are part of the
//! cache's observable behavior, not server bookkeeping, so the unit
//! tests pin them here.

use std::collections::HashMap;

use crate::wire::{config_bytes, EngineRef};
use blockamc::solver::SolverConfig;

/// Key of one cached prepared solver: *which matrix* (by
/// [`fingerprint`](amc_linalg::Matrix::fingerprint)), *under which
/// configuration* (canonical [`config_bytes`] — `SolverConfig` itself
/// is neither `Eq` nor `Hash`, its canonical encoding is both), *on
/// which engine* (registry name + build seed). Equal keys produce
/// bit-identical solvers, which is what makes cache hits and request
/// coalescing invisible in the results.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// [`Matrix::fingerprint`](amc_linalg::Matrix::fingerprint) of the
    /// coefficient matrix.
    pub fingerprint: u64,
    /// Canonical wire encoding of the solver configuration.
    pub config: Vec<u8>,
    /// Engine registry name + deterministic build seed.
    pub engine: EngineRef,
}

impl CacheKey {
    /// Builds the key for (`fingerprint`, `config`, `engine`).
    pub fn new(fingerprint: u64, config: &SolverConfig, engine: &EngineRef) -> Self {
        CacheKey {
            fingerprint,
            config: config_bytes(config),
            engine: engine.clone(),
        }
    }
}

/// Monotonic counters describing the cache's life so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheCounters {
    /// Fetches that found an entry.
    pub hits: u64,
    /// Fetches that found nothing.
    pub misses: u64,
    /// Entries displaced to stay within capacity.
    pub evictions: u64,
    /// Entries inserted.
    pub insertions: u64,
}

/// Saturating counter bump: a counter at `u64::MAX` stays pinned there
/// (and trips a debug assertion) instead of wrapping to a misleadingly
/// small number.
fn saturating_bump(counter: &mut u64, what: &'static str) {
    debug_assert!(*counter < u64::MAX, "CacheCounters::{what} saturated");
    *counter = counter.saturating_add(1);
}

/// Sentinel for "no neighbor" in the intrusive lists.
const NIL: usize = usize::MAX;

/// One slab slot: the entry plus its intrusive links within its
/// frequency bucket's list.
#[derive(Debug)]
struct Node<V> {
    key: CacheKey,
    value: V,
    freq: u64,
    prev: usize,
    next: usize,
}

/// Head/tail of one frequency bucket's doubly-linked entry list.
#[derive(Debug, Clone, Copy)]
struct Bucket {
    head: usize,
    tail: usize,
}

/// The LFU cache. `V` is the cached value — the server stores
/// [`SolverReplica`](blockamc::solver::SolverReplica)s of type-erased
/// engines; the unit tests store integers.
#[derive(Debug)]
pub struct LfuCache<V> {
    capacity: usize,
    slab: Vec<Option<Node<V>>>,
    free: Vec<usize>,
    index: HashMap<CacheKey, usize>,
    buckets: HashMap<u64, Bucket>,
    /// Lowest frequency with a non-empty bucket; meaningless when empty.
    min_freq: u64,
    counters: CacheCounters,
}

impl<V> LfuCache<V> {
    /// Creates a cache holding at most `capacity` entries (clamped to at
    /// least 1 — a zero-capacity cache could satisfy nothing and would
    /// turn every `insert` into a silent drop).
    pub fn new(capacity: usize) -> Self {
        LfuCache {
            capacity: capacity.max(1),
            slab: Vec::new(),
            free: Vec::new(),
            index: HashMap::new(),
            buckets: HashMap::new(),
            min_freq: 0,
            counters: CacheCounters::default(),
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Counter snapshot.
    pub fn counters(&self) -> CacheCounters {
        self.counters
    }

    /// Whether `key` is cached. Does **not** count as a fetch: no
    /// counters move, no frequency is bumped.
    pub fn contains(&self, key: &CacheKey) -> bool {
        self.index.contains_key(key)
    }

    /// Reads the entry under `key` without counting a fetch or bumping
    /// the frequency — the dispatcher's re-read of a key that a request
    /// already fetched (and heated) at resolve time.
    pub fn peek(&self, key: &CacheKey) -> Option<&V> {
        let idx = *self.index.get(key)?;
        Some(&self.slab[idx].as_ref().unwrap().value)
    }

    /// Mutable [`peek`](LfuCache::peek): no counters move, no frequency
    /// is bumped. Lets the dispatcher write an aged solver's advanced
    /// clock back into its slot without re-heating the entry.
    pub fn peek_mut(&mut self, key: &CacheKey) -> Option<&mut V> {
        let idx = *self.index.get(key)?;
        Some(&mut self.slab[idx].as_mut().unwrap().value)
    }

    /// Fetches the entry under `key`, bumping its frequency and the
    /// hit/miss counters.
    pub fn get(&mut self, key: &CacheKey) -> Option<&V> {
        match self.index.get(key).copied() {
            None => {
                saturating_bump(&mut self.counters.misses, "misses");
                None
            }
            Some(idx) => {
                saturating_bump(&mut self.counters.hits, "hits");
                self.touch(idx);
                Some(&self.slab[idx].as_ref().unwrap().value)
            }
        }
    }

    /// Inserts `value` under `key` (frequency 1, head of its bucket),
    /// evicting the coldest entry first when at capacity. Returns the
    /// evicted `(key, value)`, if any. Inserting over an existing key
    /// replaces the value in place, keeping the frequency.
    pub fn insert(&mut self, key: CacheKey, value: V) -> Option<(CacheKey, V)> {
        if let Some(&idx) = self.index.get(&key) {
            self.slab[idx].as_mut().unwrap().value = value;
            return None;
        }
        let evicted = if self.index.len() == self.capacity {
            self.evict()
        } else {
            None
        };
        let idx = match self.free.pop() {
            Some(idx) => idx,
            None => {
                self.slab.push(None);
                self.slab.len() - 1
            }
        };
        self.slab[idx] = Some(Node {
            key: key.clone(),
            value,
            freq: 1,
            prev: NIL,
            next: NIL,
        });
        self.index.insert(key, idx);
        self.push_head(1, idx);
        self.min_freq = 1;
        saturating_bump(&mut self.counters.insertions, "insertions");
        if evicted.is_some() {
            saturating_bump(&mut self.counters.evictions, "evictions");
        }
        evicted
    }

    /// Removes and returns the entry under `key`, if present. Not a
    /// fetch and not an eviction: no counters move.
    pub fn remove(&mut self, key: &CacheKey) -> Option<V> {
        let idx = self.index.remove(key)?;
        let freq = self.slab[idx].as_ref().unwrap().freq;
        self.unlink(freq, idx);
        let node = self.slab[idx].take().unwrap();
        self.free.push(idx);
        self.fix_min_freq();
        Some(node.value)
    }

    /// Pops the tail of the minimum-frequency bucket.
    fn evict(&mut self) -> Option<(CacheKey, V)> {
        let bucket = self.buckets.get(&self.min_freq)?;
        let idx = bucket.tail;
        debug_assert_ne!(idx, NIL);
        self.unlink(self.min_freq, idx);
        let node = self.slab[idx].take().unwrap();
        self.free.push(idx);
        self.index.remove(&node.key);
        self.fix_min_freq();
        Some((node.key, node.value))
    }

    /// Moves `idx` from its bucket to the head of the next-higher one.
    fn touch(&mut self, idx: usize) {
        let freq = self.slab[idx].as_ref().unwrap().freq;
        self.unlink(freq, idx);
        let node = self.slab[idx].as_mut().unwrap();
        node.freq = freq + 1;
        self.push_head(freq + 1, idx);
        // If idx was the last entry at min_freq, the minimum moved up —
        // and it can only have moved to freq + 1.
        if self.min_freq == freq && !self.buckets.contains_key(&freq) {
            self.min_freq = freq + 1;
        }
    }

    /// Links `idx` at the head of bucket `freq`.
    fn push_head(&mut self, freq: u64, idx: usize) {
        match self.buckets.get_mut(&freq) {
            None => {
                self.buckets.insert(
                    freq,
                    Bucket {
                        head: idx,
                        tail: idx,
                    },
                );
            }
            Some(bucket) => {
                let old_head = bucket.head;
                bucket.head = idx;
                self.slab[idx].as_mut().unwrap().next = old_head;
                self.slab[old_head].as_mut().unwrap().prev = idx;
            }
        }
    }

    /// Unlinks `idx` from bucket `freq`, dropping the bucket if it
    /// empties.
    fn unlink(&mut self, freq: u64, idx: usize) {
        let (prev, next) = {
            let node = self.slab[idx].as_mut().unwrap();
            let links = (node.prev, node.next);
            node.prev = NIL;
            node.next = NIL;
            links
        };
        if prev != NIL {
            self.slab[prev].as_mut().unwrap().next = next;
        }
        if next != NIL {
            self.slab[next].as_mut().unwrap().prev = prev;
        }
        let bucket = self.buckets.get_mut(&freq).expect("bucket exists");
        if bucket.head == idx {
            bucket.head = next;
        }
        if bucket.tail == idx {
            bucket.tail = prev;
        }
        if bucket.head == NIL {
            self.buckets.remove(&freq);
        }
    }

    /// Re-derives `min_freq` after a removal that may have emptied the
    /// minimum bucket at an arbitrary frequency. Removals are rare
    /// (explicit `Evict` requests), so the scan over bucket keys —
    /// bounded by the number of *distinct frequencies*, itself bounded
    /// by the capacity — is not on the hot path.
    fn fix_min_freq(&mut self) {
        if self.buckets.contains_key(&self.min_freq) {
            return;
        }
        self.min_freq = self.buckets.keys().copied().min().unwrap_or(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(fp: u64) -> CacheKey {
        CacheKey {
            fingerprint: fp,
            config: vec![1, 2, 3],
            engine: EngineRef::new("numeric", 0),
        }
    }

    #[test]
    fn counter_bump_is_exact_up_to_the_boundary() {
        let mut c: LfuCache<i32> = LfuCache::new(2);
        c.counters.misses = u64::MAX - 1;
        assert!(c.get(&key(1)).is_none());
        // The last representable bump is exact, not prematurely pinned.
        assert_eq!(c.counters().misses, u64::MAX);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn counter_saturates_at_max_in_release() {
        let mut c: LfuCache<i32> = LfuCache::new(2);
        c.counters.misses = u64::MAX;
        assert!(c.get(&key(1)).is_none());
        assert_eq!(c.counters().misses, u64::MAX, "saturated, not wrapped");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "CacheCounters::misses saturated")]
    fn counter_overflow_asserts_in_debug() {
        let mut c: LfuCache<i32> = LfuCache::new(2);
        c.counters.misses = u64::MAX;
        let _ = c.get(&key(1));
    }

    #[test]
    fn basic_hit_miss_and_counters() {
        let mut c: LfuCache<i32> = LfuCache::new(2);
        assert_eq!(c.capacity(), 2);
        assert!(c.get(&key(1)).is_none());
        assert!(c.insert(key(1), 10).is_none());
        assert_eq!(c.get(&key(1)), Some(&10));
        assert!(c.contains(&key(1)));
        assert!(!c.contains(&key(2)));
        let n = c.counters();
        assert_eq!((n.hits, n.misses, n.insertions, n.evictions), (1, 1, 1, 0));
        // contains() moved no counters.
        assert_eq!(c.counters(), n);
    }

    #[test]
    fn peek_and_peek_mut_move_no_counters() {
        let mut c: LfuCache<i32> = LfuCache::new(2);
        c.insert(key(1), 10);
        let before = c.counters();
        assert_eq!(c.peek(&key(1)), Some(&10));
        *c.peek_mut(&key(1)).unwrap() = 11;
        assert!(c.peek_mut(&key(2)).is_none());
        assert_eq!(c.peek(&key(1)), Some(&11));
        assert_eq!(c.counters(), before, "peeks are not fetches");
    }

    #[test]
    fn evicts_least_frequent_first() {
        let mut c: LfuCache<i32> = LfuCache::new(2);
        c.insert(key(1), 10);
        c.insert(key(2), 20);
        // Heat up key 1.
        assert!(c.get(&key(1)).is_some());
        assert!(c.get(&key(1)).is_some());
        // Inserting key 3 must displace key 2 (freq 1), not key 1 (freq 3).
        let (evicted, _) = c.insert(key(3), 30).unwrap();
        assert_eq!(evicted, key(2));
        assert!(c.contains(&key(1)));
        assert!(c.contains(&key(3)));
        assert_eq!(c.len(), 2);
        assert_eq!(c.counters().evictions, 1);
    }

    #[test]
    fn ties_break_least_recently_touched() {
        let mut c: LfuCache<i32> = LfuCache::new(3);
        c.insert(key(1), 10);
        c.insert(key(2), 20);
        c.insert(key(3), 30);
        // All at freq 1; bump 1 and 3, so 2 is coldest. Then among the
        // freq-2 pair, 1 was touched before 3.
        c.get(&key(1));
        c.get(&key(3));
        let (e1, _) = c.insert(key(4), 40).unwrap();
        assert_eq!(e1, key(2), "lowest frequency goes first");
        // Now 4 is at freq 1 — evicted next despite being newest.
        let (e2, _) = c.insert(key(5), 50).unwrap();
        assert_eq!(e2, key(4));
        // 1, 3 at freq 2 and 5 at freq 1: bump 5 twice so all tie at
        // freq >= 2? No — 5 reaches 3; of 1 and 3 (both freq 2), 1 was
        // touched earlier and goes first.
        c.get(&key(5));
        c.get(&key(5));
        let (e3, _) = c.insert(key(6), 60).unwrap();
        assert_eq!(e3, key(1), "LRU within the minimum bucket");
    }

    #[test]
    fn capacity_is_respected_under_churn() {
        let mut c: LfuCache<u64> = LfuCache::new(4);
        for i in 0..100 {
            c.insert(key(i), i);
            assert!(c.len() <= 4);
            // Exercise gets over a sliding window.
            c.get(&key(i.saturating_sub(1)));
        }
        assert_eq!(c.len(), 4);
        let n = c.counters();
        assert_eq!(n.insertions, 100);
        assert_eq!(n.evictions, 96);
    }

    #[test]
    fn remove_and_reinsert() {
        let mut c: LfuCache<i32> = LfuCache::new(2);
        c.insert(key(1), 10);
        c.insert(key(2), 20);
        c.get(&key(1));
        assert_eq!(c.remove(&key(1)), Some(10));
        assert_eq!(c.remove(&key(1)), None);
        assert_eq!(c.len(), 1);
        // Slab slot is recycled; the cache keeps working.
        c.insert(key(3), 30);
        c.insert(key(4), 40); // evicts 2 or 3 (both freq 1; 2 older)
        assert_eq!(c.len(), 2);
        assert!(!c.contains(&key(2)), "older freq-1 entry evicted first");
        // Removals are not evictions.
        assert_eq!(c.counters().evictions, 1);
    }

    #[test]
    fn insert_over_existing_key_replaces_in_place() {
        let mut c: LfuCache<i32> = LfuCache::new(2);
        c.insert(key(1), 10);
        c.get(&key(1));
        assert!(c.insert(key(1), 11).is_none());
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&key(1)), Some(&11));
        // Replacement kept the frequency: a fresh freq-1 entry loses the
        // eviction race against it.
        c.insert(key(2), 20);
        let (evicted, _) = c.insert(key(3), 30).unwrap();
        assert_eq!(evicted, key(2));
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut c: LfuCache<i32> = LfuCache::new(0);
        assert_eq!(c.capacity(), 1);
        c.insert(key(1), 10);
        assert_eq!(c.get(&key(1)), Some(&10));
    }

    #[test]
    fn distinct_config_bytes_and_engines_are_distinct_keys() {
        let mut c: LfuCache<i32> = LfuCache::new(4);
        let base = key(1);
        let mut other_config = key(1);
        other_config.config = vec![9];
        let mut other_engine = key(1);
        other_engine.engine = EngineRef::new("circuit", 0);
        let mut other_seed = key(1);
        other_seed.engine = EngineRef::new("numeric", 1);
        c.insert(base.clone(), 1);
        c.insert(other_config.clone(), 2);
        c.insert(other_engine.clone(), 3);
        c.insert(other_seed.clone(), 4);
        assert_eq!(c.len(), 4);
        assert_eq!(c.get(&base), Some(&1));
        assert_eq!(c.get(&other_config), Some(&2));
        assert_eq!(c.get(&other_engine), Some(&3));
        assert_eq!(c.get(&other_seed), Some(&4));
    }
}

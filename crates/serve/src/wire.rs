//! The framed wire protocol.
//!
//! Every message travels as one **frame**: a little-endian `u32` length
//! prefix followed by exactly that many payload bytes. Every payload
//! begins with the protocol version byte ([`PROTOCOL_VERSION`]) and a
//! message tag; the remaining bytes are the tag's fields, encoded with
//! the primitives below. See the crate-level documentation for the full
//! byte-by-byte layout of every message.
//!
//! ## Encoding primitives
//!
//! | type     | bytes | layout                                         |
//! |----------|-------|------------------------------------------------|
//! | `u8`     | 1     | as-is                                          |
//! | `bool`   | 1     | `0` = false, `1` = true (others are errors)    |
//! | `u32`    | 4     | little-endian                                  |
//! | `u64`    | 8     | little-endian                                  |
//! | `f64`    | 8     | IEEE-754 bit pattern, little-endian            |
//! | `str`    | 4 + n | `u32` byte length, then UTF-8 bytes            |
//! | `vec<T>` | 4 + … | `u32` element count, then each element         |
//!
//! Floats are carried as exact bit patterns, never reformatted — the
//! protocol preserves the workspace's bit-identity contract end to end
//! (`-0.0`, subnormals, and NaN payloads survive a round trip).
//!
//! The [`SolverConfig`] encoding produced by [`config_bytes`] is
//! **canonical**: equal configurations encode to equal bytes, which is
//! what lets the server use the encoded form directly as the
//! configuration component of its cache key.

use amc_linalg::Matrix;
use blockamc::converter::{Converter, IoConfig};
use blockamc::solver::SplitSearchOptions;
use blockamc::solver::{LevelIo, SignalPlan, SolverConfig, SplitRule, Stages};

use crate::error::{Result, ServeError};

/// Version byte every payload starts with; decoding any other value is
/// a [`ServeError::Protocol`].
///
/// Version 2 added degraded-mode serving: `Solve`/`SolveBatch` carry an
/// `accept_degraded` flag, `Solved`/`SolvedBatch` carry a `degraded`
/// flag, and the stats block grew `staleness_evictions` and
/// `degraded_served`.
pub const PROTOCOL_VERSION: u8 = 2;

/// Upper bound on a frame's payload length (64 MiB). A length prefix
/// beyond this is rejected before any allocation, so a corrupt or
/// hostile peer cannot make the receiver reserve unbounded memory.
pub const MAX_FRAME_LEN: usize = 64 << 20;

// ---------------------------------------------------------------------
// Primitive writers: all little-endian, appending to a Vec<u8>.
// ---------------------------------------------------------------------

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(u8::from(v));
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_f64s(out: &mut Vec<u8>, vs: &[f64]) {
    put_u32(out, vs.len() as u32);
    for &v in vs {
        put_f64(out, v);
    }
}

// ---------------------------------------------------------------------
// Primitive reader: a cursor over a payload slice, every read checked.
// ---------------------------------------------------------------------

/// Checked cursor over one frame's payload.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let s = &self.buf[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(ServeError::protocol(format!(
                "truncated payload: wanted {n} bytes at offset {}, frame has {}",
                self.pos,
                self.buf.len()
            ))),
        }
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn bool(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(ServeError::protocol(format!("invalid bool byte {v}"))),
        }
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(u64::from_le_bytes(
            self.take(8)?.try_into().unwrap(),
        )))
    }

    fn str(&mut self) -> Result<String> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ServeError::protocol("string field is not valid UTF-8"))
    }

    fn f64s(&mut self) -> Result<Vec<f64>> {
        let n = self.u32()? as usize;
        // Each element takes 8 bytes; checking against the remaining
        // frame bounds the allocation.
        if n.saturating_mul(8) > self.buf.len() - self.pos {
            return Err(ServeError::protocol(format!(
                "vector length {n} exceeds remaining frame"
            )));
        }
        (0..n).map(|_| self.f64()).collect()
    }

    /// Asserts the payload was consumed exactly.
    fn finish(&self) -> Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ServeError::protocol(format!(
                "{} trailing bytes after message",
                self.buf.len() - self.pos
            )))
        }
    }
}

// ---------------------------------------------------------------------
// Domain encodings: Matrix, Converter/IoConfig, SolverConfig, EngineRef.
// ---------------------------------------------------------------------

fn put_matrix(out: &mut Vec<u8>, m: &Matrix) {
    put_u64(out, m.rows() as u64);
    put_u64(out, m.cols() as u64);
    for &v in m.as_slice() {
        put_f64(out, v);
    }
}

fn read_matrix(r: &mut Reader<'_>) -> Result<Matrix> {
    let rows = r.u64()? as usize;
    let cols = r.u64()? as usize;
    let n = rows
        .checked_mul(cols)
        .ok_or_else(|| ServeError::protocol(format!("matrix dimensions {rows}x{cols} overflow")))?;
    if n.saturating_mul(8) > r.buf.len() {
        return Err(ServeError::protocol(format!(
            "matrix of {n} entries exceeds frame length"
        )));
    }
    let data = (0..n).map(|_| r.f64()).collect::<Result<Vec<f64>>>()?;
    Matrix::from_vec(rows, cols, data)
        .map_err(|e| ServeError::protocol(format!("invalid matrix: {e}")))
}

fn put_converter(out: &mut Vec<u8>, c: &Option<Converter>) {
    match c {
        None => put_u8(out, 0),
        Some(c) => {
            put_u8(out, 1);
            put_u32(out, c.bits());
            put_f64(out, c.v_range());
        }
    }
}

fn read_converter(r: &mut Reader<'_>) -> Result<Option<Converter>> {
    match r.u8()? {
        0 => Ok(None),
        1 => {
            let bits = r.u32()?;
            let v_range = r.f64()?;
            Converter::new(bits, v_range)
                .map(Some)
                .map_err(|e| ServeError::protocol(format!("invalid converter: {e}")))
        }
        t => Err(ServeError::protocol(format!("unknown converter tag {t}"))),
    }
}

fn put_io(out: &mut Vec<u8>, io: &IoConfig) {
    put_converter(out, &io.dac);
    put_converter(out, &io.adc);
    put_f64(out, io.sh_droop);
}

fn read_io(r: &mut Reader<'_>) -> Result<IoConfig> {
    Ok(IoConfig {
        dac: read_converter(r)?,
        adc: read_converter(r)?,
        sh_droop: r.f64()?,
    })
}

/// The canonical byte encoding of a [`SolverConfig`].
///
/// Used both on the wire (inside `Prepare`/`Solve`/… messages) and as
/// the configuration component of the server's cache key: equal
/// configurations produce equal bytes, and the encoding carries exact
/// `f64` bit patterns, so the key inherits the same bitwise-equality
/// semantics as [`Matrix::fingerprint`].
pub fn config_bytes(config: &SolverConfig) -> Vec<u8> {
    let mut out = Vec::new();
    put_config(&mut out, config);
    out
}

fn put_config(out: &mut Vec<u8>, config: &SolverConfig) {
    match config.stages() {
        Stages::Original => put_u8(out, 0),
        Stages::One => put_u8(out, 1),
        Stages::Two => put_u8(out, 2),
        Stages::Multi(d) => {
            put_u8(out, 3);
            put_u32(out, d as u32);
        }
    }
    match config.split_rule() {
        SplitRule::Halves => put_u8(out, 0),
        SplitRule::Searched(opts) => {
            put_u8(out, 1);
            put_f64(out, opts.imbalance_weight);
        }
    }
    put_bool(out, config.capture_trace());
    let levels = config.signal_plan().levels();
    put_u32(out, levels.len() as u32);
    for level in levels {
        match level {
            LevelIo::Pure => put_u8(out, 0),
            LevelIo::Macro(io) => {
                put_u8(out, 1);
                put_io(out, io);
            }
            LevelIo::Bus(io) => {
                put_u8(out, 2);
                put_io(out, io);
            }
        }
    }
}

fn read_config(r: &mut Reader<'_>) -> Result<SolverConfig> {
    let stages = match r.u8()? {
        0 => Stages::Original,
        1 => Stages::One,
        2 => Stages::Two,
        3 => Stages::Multi(r.u32()? as usize),
        t => return Err(ServeError::protocol(format!("unknown stages tag {t}"))),
    };
    let split = match r.u8()? {
        0 => SplitRule::Halves,
        1 => SplitRule::Searched(SplitSearchOptions {
            imbalance_weight: r.f64()?,
        }),
        t => return Err(ServeError::protocol(format!("unknown split tag {t}"))),
    };
    let capture_trace = r.bool()?;
    let n_levels = r.u32()? as usize;
    if n_levels > r.buf.len() - r.pos {
        return Err(ServeError::protocol(format!(
            "signal plan of {n_levels} levels exceeds remaining frame"
        )));
    }
    let mut levels = Vec::with_capacity(n_levels);
    for _ in 0..n_levels {
        levels.push(match r.u8()? {
            0 => LevelIo::Pure,
            1 => LevelIo::Macro(read_io(r)?),
            2 => LevelIo::Bus(read_io(r)?),
            t => return Err(ServeError::protocol(format!("unknown level tag {t}"))),
        });
    }
    // The builder re-validates, so a nonsensical decoded configuration
    // (e.g. Multi(0), converter entries below the cascade) is rejected
    // here rather than detonating inside the solver.
    SolverConfig::builder()
        .stages(stages)
        .split_rule(split)
        .capture_trace(capture_trace)
        .signal_plan(SignalPlan::from_levels(levels))
        .finish()
        .map_err(|e| ServeError::protocol(format!("invalid solver config: {e}")))
}

/// A reference to an engine backend, resolved against the server's
/// [`EngineRegistry`](blockamc::engine::EngineRegistry): the registry
/// name plus the deterministic build seed. Together with the matrix
/// fingerprint and the configuration bytes this is the third component
/// of the cache key — the same matrix prepared on `"numeric"` and on
/// `"circuit"` are different cached solvers.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EngineRef {
    /// Registry name of the backend (e.g. `"numeric"`, `"circuit"`).
    pub name: String,
    /// Seed passed to the registry constructor; replays bit-identically.
    pub seed: u64,
}

impl EngineRef {
    /// Creates a reference from anything string-like.
    pub fn new(name: impl Into<String>, seed: u64) -> Self {
        EngineRef {
            name: name.into(),
            seed,
        }
    }
}

fn put_engine(out: &mut Vec<u8>, e: &EngineRef) {
    put_str(out, &e.name);
    put_u64(out, e.seed);
}

fn read_engine(r: &mut Reader<'_>) -> Result<EngineRef> {
    Ok(EngineRef {
        name: r.str()?,
        seed: r.u64()?,
    })
}

/// How a solve names its matrix: inline (the server prepares and caches
/// it on first sight) or by [`Matrix::fingerprint`] of a matrix some
/// earlier request already prepared.
#[derive(Debug, Clone, PartialEq)]
pub enum MatrixRef {
    /// The full matrix travels in the frame.
    Inline(Matrix),
    /// Only the 64-bit fingerprint travels; the server answers
    /// [`Response::NotPrepared`] if no solver is cached under it.
    Cached(u64),
}

fn put_matrix_ref(out: &mut Vec<u8>, m: &MatrixRef) {
    match m {
        MatrixRef::Inline(matrix) => {
            put_u8(out, 0);
            put_matrix(out, matrix);
        }
        MatrixRef::Cached(fp) => {
            put_u8(out, 1);
            put_u64(out, *fp);
        }
    }
}

fn read_matrix_ref(r: &mut Reader<'_>) -> Result<MatrixRef> {
    match r.u8()? {
        0 => Ok(MatrixRef::Inline(read_matrix(r)?)),
        1 => Ok(MatrixRef::Cached(r.u64()?)),
        t => Err(ServeError::protocol(format!("unknown matrix-ref tag {t}"))),
    }
}

// ---------------------------------------------------------------------
// Requests.
// ---------------------------------------------------------------------

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Program `matrix` on `engine` under `config` and cache the
    /// prepared solver. Answered by [`Response::Prepared`] (with
    /// `hit = true` when an equal key was already cached and nothing
    /// was programmed).
    Prepare {
        /// The coefficient matrix to prepare.
        matrix: Matrix,
        /// Solver architecture/signal-path configuration.
        config: SolverConfig,
        /// Engine backend to program the arrays on.
        engine: EngineRef,
    },
    /// Solve one right-hand side against a cached (or inline) matrix.
    /// Answered by [`Response::Solved`], [`Response::Busy`], or
    /// [`Response::NotPrepared`].
    Solve {
        /// The matrix, inline or by fingerprint.
        matrix: MatrixRef,
        /// Solver configuration (part of the cache key).
        config: SolverConfig,
        /// Engine backend (part of the cache key).
        engine: EngineRef,
        /// The right-hand side `b` of `A·x = b`.
        rhs: Vec<f64>,
        /// Opt in to a stale-but-fast answer: when the server's health
        /// monitor flags the cached solver as degraded, serve it anyway
        /// (flagged `degraded = true` in the response) instead of
        /// evicting and re-preparing. Ignored on servers without aging.
        accept_degraded: bool,
    },
    /// Solve many right-hand sides in one request. Answered by
    /// [`Response::SolvedBatch`] with solutions in input order.
    SolveBatch {
        /// The matrix, inline or by fingerprint.
        matrix: MatrixRef,
        /// Solver configuration (part of the cache key).
        config: SolverConfig,
        /// Engine backend (part of the cache key).
        engine: EngineRef,
        /// The right-hand sides, each of length `n`.
        batch: Vec<Vec<f64>>,
        /// Same stale-but-fast opt-in as [`Request::Solve`].
        accept_degraded: bool,
    },
    /// Drop the cached solver under this exact key, if present.
    /// Answered by [`Response::Evicted`].
    Evict {
        /// Fingerprint of the prepared matrix.
        fingerprint: u64,
        /// Configuration component of the key.
        config: SolverConfig,
        /// Engine component of the key.
        engine: EngineRef,
    },
    /// Read the server's counters. Answered by [`Response::Stats`].
    Stats,
    /// Stop the server: in-flight work is failed out, every connection
    /// unblocks. Answered by [`Response::ShuttingDown`].
    Shutdown,
}

const REQ_PREPARE: u8 = 0;
const REQ_SOLVE: u8 = 1;
const REQ_SOLVE_BATCH: u8 = 2;
const REQ_EVICT: u8 = 3;
const REQ_STATS: u8 = 4;
const REQ_SHUTDOWN: u8 = 5;

impl Request {
    /// Encodes this request into a frame payload (version byte, tag,
    /// fields — without the length prefix, which the transport adds).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![PROTOCOL_VERSION];
        match self {
            Request::Prepare {
                matrix,
                config,
                engine,
            } => {
                put_u8(&mut out, REQ_PREPARE);
                put_matrix(&mut out, matrix);
                put_config(&mut out, config);
                put_engine(&mut out, engine);
            }
            Request::Solve {
                matrix,
                config,
                engine,
                rhs,
                accept_degraded,
            } => {
                put_u8(&mut out, REQ_SOLVE);
                put_matrix_ref(&mut out, matrix);
                put_config(&mut out, config);
                put_engine(&mut out, engine);
                put_f64s(&mut out, rhs);
                put_bool(&mut out, *accept_degraded);
            }
            Request::SolveBatch {
                matrix,
                config,
                engine,
                batch,
                accept_degraded,
            } => {
                put_u8(&mut out, REQ_SOLVE_BATCH);
                put_matrix_ref(&mut out, matrix);
                put_config(&mut out, config);
                put_engine(&mut out, engine);
                put_u32(&mut out, batch.len() as u32);
                for rhs in batch {
                    put_f64s(&mut out, rhs);
                }
                put_bool(&mut out, *accept_degraded);
            }
            Request::Evict {
                fingerprint,
                config,
                engine,
            } => {
                put_u8(&mut out, REQ_EVICT);
                put_u64(&mut out, *fingerprint);
                put_config(&mut out, config);
                put_engine(&mut out, engine);
            }
            Request::Stats => put_u8(&mut out, REQ_STATS),
            Request::Shutdown => put_u8(&mut out, REQ_SHUTDOWN),
        }
        out
    }

    /// Decodes a frame payload into a request.
    ///
    /// # Errors
    ///
    /// [`ServeError::Protocol`] for a wrong version byte, an unknown
    /// tag, a truncated or over-long payload, or a field that fails
    /// domain validation (matrix shape, converter range, solver
    /// configuration).
    pub fn decode(payload: &[u8]) -> Result<Request> {
        let mut r = Reader::new(payload);
        check_version(&mut r)?;
        let req = match r.u8()? {
            REQ_PREPARE => Request::Prepare {
                matrix: read_matrix(&mut r)?,
                config: read_config(&mut r)?,
                engine: read_engine(&mut r)?,
            },
            REQ_SOLVE => Request::Solve {
                matrix: read_matrix_ref(&mut r)?,
                config: read_config(&mut r)?,
                engine: read_engine(&mut r)?,
                rhs: r.f64s()?,
                accept_degraded: r.bool()?,
            },
            REQ_SOLVE_BATCH => {
                let matrix = read_matrix_ref(&mut r)?;
                let config = read_config(&mut r)?;
                let engine = read_engine(&mut r)?;
                let k = r.u32()? as usize;
                if k > r.buf.len() - r.pos {
                    return Err(ServeError::protocol(format!(
                        "batch of {k} right-hand sides exceeds remaining frame"
                    )));
                }
                let batch = (0..k).map(|_| r.f64s()).collect::<Result<Vec<_>>>()?;
                Request::SolveBatch {
                    matrix,
                    config,
                    engine,
                    batch,
                    accept_degraded: r.bool()?,
                }
            }
            REQ_EVICT => Request::Evict {
                fingerprint: r.u64()?,
                config: read_config(&mut r)?,
                engine: read_engine(&mut r)?,
            },
            REQ_STATS => Request::Stats,
            REQ_SHUTDOWN => Request::Shutdown,
            t => return Err(ServeError::protocol(format!("unknown request tag {t}"))),
        };
        r.finish()?;
        Ok(req)
    }
}

fn check_version(r: &mut Reader<'_>) -> Result<()> {
    match r.u8()? {
        PROTOCOL_VERSION => Ok(()),
        v => Err(ServeError::protocol(format!(
            "unsupported protocol version {v} (this build speaks {PROTOCOL_VERSION})"
        ))),
    }
}

// ---------------------------------------------------------------------
// Responses.
// ---------------------------------------------------------------------

/// Cache and throughput counters, as reported by [`Request::Stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Cache fetches that found a prepared solver.
    pub hits: u64,
    /// Cache fetches that found nothing (followed by a prepare+insert
    /// on the solve path).
    pub misses: u64,
    /// Entries displaced by the LFU policy to stay within capacity.
    pub evictions: u64,
    /// Prepared solvers inserted into the cache.
    pub insertions: u64,
    /// Prepared solvers currently cached.
    pub entries: u64,
    /// Maximum number of cached solvers.
    pub capacity: u64,
    /// Requests decoded and accepted across all connections.
    pub requests: u64,
    /// Right-hand sides solved to completion.
    pub solved_rhs: u64,
    /// Dispatcher rounds: each drains every queued job for one cache
    /// key into a single engine batch.
    pub dispatch_batches: u64,
    /// Jobs (requests) folded into those rounds; `coalesced_requests /
    /// dispatch_batches` > 1 means concurrent requests shared batches.
    pub coalesced_requests: u64,
    /// Cached solvers dropped because the health monitor found them
    /// degraded past the staleness threshold (disjoint from the LFU
    /// capacity `evictions`).
    pub staleness_evictions: u64,
    /// Right-hand sides served from a degraded solver because every
    /// coalesced request opted in with `accept_degraded`.
    pub degraded_served: u64,
}

impl ServerStats {
    /// Fraction of cache fetches served from the cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Mean number of requests folded into one dispatcher round — 1.0
    /// means no coalescing happened, higher means concurrent requests
    /// against the same solver shared engine batches.
    pub fn coalescing_factor(&self) -> f64 {
        if self.dispatch_batches == 0 {
            0.0
        } else {
            self.coalesced_requests as f64 / self.dispatch_batches as f64
        }
    }
}

fn put_stats(out: &mut Vec<u8>, s: &ServerStats) {
    for v in [
        s.hits,
        s.misses,
        s.evictions,
        s.insertions,
        s.entries,
        s.capacity,
        s.requests,
        s.solved_rhs,
        s.dispatch_batches,
        s.coalesced_requests,
        s.staleness_evictions,
        s.degraded_served,
    ] {
        put_u64(out, v);
    }
}

fn read_stats(r: &mut Reader<'_>) -> Result<ServerStats> {
    Ok(ServerStats {
        hits: r.u64()?,
        misses: r.u64()?,
        evictions: r.u64()?,
        insertions: r.u64()?,
        entries: r.u64()?,
        capacity: r.u64()?,
        requests: r.u64()?,
        solved_rhs: r.u64()?,
        dispatch_batches: r.u64()?,
        coalesced_requests: r.u64()?,
        staleness_evictions: r.u64()?,
        degraded_served: r.u64()?,
    })
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A `Prepare` completed (or was already satisfied by the cache).
    Prepared {
        /// Fingerprint of the prepared matrix — use it in
        /// [`MatrixRef::Cached`] solves.
        fingerprint: u64,
        /// `true` when an equal key was already cached.
        hit: bool,
    },
    /// A `Solve` completed.
    Solved {
        /// The solution `x` of `A·x = b`.
        x: Vec<f64>,
        /// `true` when the answer came from a solver the health monitor
        /// had flagged as degraded (only possible when the request set
        /// `accept_degraded`).
        degraded: bool,
    },
    /// A `SolveBatch` completed.
    SolvedBatch {
        /// One solution per right-hand side, in input order.
        xs: Vec<Vec<f64>>,
        /// Same degraded-origin flag as [`Response::Solved`].
        degraded: bool,
    },
    /// An `Evict` completed.
    Evicted {
        /// Whether the key was present.
        found: bool,
    },
    /// A `Stats` snapshot.
    Stats(ServerStats),
    /// The pending queue was full; the request was **not** queued.
    Busy,
    /// A `Cached` solve named a fingerprint with no cached solver.
    NotPrepared {
        /// The fingerprint the request referenced.
        fingerprint: u64,
    },
    /// Acknowledges a `Shutdown`; no further requests will be served.
    ShuttingDown,
    /// Solver-side failure (engine build, preparation, or solve error).
    Error {
        /// Human-readable description of the failure.
        message: String,
    },
}

const RESP_PREPARED: u8 = 0;
const RESP_SOLVED: u8 = 1;
const RESP_SOLVED_BATCH: u8 = 2;
const RESP_EVICTED: u8 = 3;
const RESP_STATS: u8 = 4;
const RESP_BUSY: u8 = 5;
const RESP_NOT_PREPARED: u8 = 6;
const RESP_SHUTTING_DOWN: u8 = 7;
const RESP_ERROR: u8 = 8;

impl Response {
    /// Encodes this response into a frame payload (without the length
    /// prefix, which the transport adds).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![PROTOCOL_VERSION];
        match self {
            Response::Prepared { fingerprint, hit } => {
                put_u8(&mut out, RESP_PREPARED);
                put_u64(&mut out, *fingerprint);
                put_bool(&mut out, *hit);
            }
            Response::Solved { x, degraded } => {
                put_u8(&mut out, RESP_SOLVED);
                put_f64s(&mut out, x);
                put_bool(&mut out, *degraded);
            }
            Response::SolvedBatch { xs, degraded } => {
                put_u8(&mut out, RESP_SOLVED_BATCH);
                put_u32(&mut out, xs.len() as u32);
                for x in xs {
                    put_f64s(&mut out, x);
                }
                put_bool(&mut out, *degraded);
            }
            Response::Evicted { found } => {
                put_u8(&mut out, RESP_EVICTED);
                put_bool(&mut out, *found);
            }
            Response::Stats(s) => {
                put_u8(&mut out, RESP_STATS);
                put_stats(&mut out, s);
            }
            Response::Busy => put_u8(&mut out, RESP_BUSY),
            Response::NotPrepared { fingerprint } => {
                put_u8(&mut out, RESP_NOT_PREPARED);
                put_u64(&mut out, *fingerprint);
            }
            Response::ShuttingDown => put_u8(&mut out, RESP_SHUTTING_DOWN),
            Response::Error { message } => {
                put_u8(&mut out, RESP_ERROR);
                put_str(&mut out, message);
            }
        }
        out
    }

    /// Decodes a frame payload into a response.
    ///
    /// # Errors
    ///
    /// [`ServeError::Protocol`] under the same conditions as
    /// [`Request::decode`].
    pub fn decode(payload: &[u8]) -> Result<Response> {
        let mut r = Reader::new(payload);
        check_version(&mut r)?;
        let resp = match r.u8()? {
            RESP_PREPARED => Response::Prepared {
                fingerprint: r.u64()?,
                hit: r.bool()?,
            },
            RESP_SOLVED => Response::Solved {
                x: r.f64s()?,
                degraded: r.bool()?,
            },
            RESP_SOLVED_BATCH => {
                let k = r.u32()? as usize;
                if k > r.buf.len() - r.pos {
                    return Err(ServeError::protocol(format!(
                        "batch of {k} solutions exceeds remaining frame"
                    )));
                }
                let xs = (0..k).map(|_| r.f64s()).collect::<Result<Vec<_>>>()?;
                Response::SolvedBatch {
                    xs,
                    degraded: r.bool()?,
                }
            }
            RESP_EVICTED => Response::Evicted { found: r.bool()? },
            RESP_STATS => Response::Stats(read_stats(&mut r)?),
            RESP_BUSY => Response::Busy,
            RESP_NOT_PREPARED => Response::NotPrepared {
                fingerprint: r.u64()?,
            },
            RESP_SHUTTING_DOWN => Response::ShuttingDown,
            RESP_ERROR => Response::Error { message: r.str()? },
            t => return Err(ServeError::protocol(format!("unknown response tag {t}"))),
        };
        r.finish()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockamc::converter::IoConfig;

    fn sample_matrix() -> Matrix {
        Matrix::from_vec(2, 2, vec![3.0, 1.0, 1.0, 2.0]).unwrap()
    }

    fn sample_config() -> SolverConfig {
        SolverConfig::builder()
            .stages(Stages::One)
            .io(IoConfig::default_8bit())
            .split_rule(SplitRule::Searched(SplitSearchOptions {
                imbalance_weight: 2.5,
            }))
            .capture_trace(false)
            .finish()
            .unwrap()
    }

    fn requests() -> Vec<Request> {
        let engine = EngineRef::new("numeric", 7);
        vec![
            Request::Prepare {
                matrix: sample_matrix(),
                config: sample_config(),
                engine: engine.clone(),
            },
            Request::Solve {
                matrix: MatrixRef::Cached(0xdead_beef_cafe_f00d),
                config: sample_config(),
                engine: engine.clone(),
                rhs: vec![4.0, -0.0],
                accept_degraded: true,
            },
            Request::SolveBatch {
                matrix: MatrixRef::Inline(sample_matrix()),
                config: sample_config(),
                engine: engine.clone(),
                batch: vec![vec![1.0, 2.0], vec![f64::MIN_POSITIVE, -3.5]],
                accept_degraded: false,
            },
            Request::Evict {
                fingerprint: 42,
                config: sample_config(),
                engine,
            },
            Request::Stats,
            Request::Shutdown,
        ]
    }

    fn responses() -> Vec<Response> {
        vec![
            Response::Prepared {
                fingerprint: 99,
                hit: true,
            },
            Response::Solved {
                x: vec![1.0, -0.0, f64::NEG_INFINITY],
                degraded: false,
            },
            Response::SolvedBatch {
                xs: vec![vec![0.5], vec![-0.25]],
                degraded: true,
            },
            Response::Evicted { found: false },
            Response::Stats(ServerStats {
                hits: 1,
                misses: 2,
                evictions: 3,
                insertions: 4,
                entries: 5,
                capacity: 6,
                requests: 7,
                solved_rhs: 8,
                dispatch_batches: 9,
                coalesced_requests: 10,
                staleness_evictions: 11,
                degraded_served: 12,
            }),
            Response::Busy,
            Response::NotPrepared { fingerprint: 7 },
            Response::ShuttingDown,
            Response::Error {
                message: "boom".into(),
            },
        ]
    }

    #[test]
    fn every_request_round_trips() {
        for req in requests() {
            let bytes = req.encode();
            assert_eq!(bytes[0], PROTOCOL_VERSION);
            assert_eq!(Request::decode(&bytes).unwrap(), req, "{req:?}");
        }
    }

    #[test]
    fn every_response_round_trips() {
        for resp in responses() {
            let bytes = resp.encode();
            assert_eq!(bytes[0], PROTOCOL_VERSION);
            assert_eq!(Response::decode(&bytes).unwrap(), resp, "{resp:?}");
        }
    }

    #[test]
    fn golden_frame_bytes_are_pinned() {
        // The exact bytes of two simple messages, spelled out. A change
        // here is a wire-format break and must bump PROTOCOL_VERSION
        // (version 2 added the degraded-serving fields).
        assert_eq!(Request::Stats.encode(), [2, 4]);
        assert_eq!(Response::Busy.encode(), [2, 5]);
        let solved = Response::Solved {
            x: vec![1.0, -2.0],
            degraded: false,
        };
        let mut expected = vec![
            2, // version
            1, // tag: Solved
            2, 0, 0, 0, // vec length, u32 LE
        ];
        expected.extend_from_slice(&1.0f64.to_bits().to_le_bytes());
        expected.extend_from_slice(&(-2.0f64).to_bits().to_le_bytes());
        expected.push(0); // degraded = false
        assert_eq!(solved.encode(), expected);
        // NotPrepared: version, tag 6, fingerprint u64 LE.
        let np = Response::NotPrepared {
            fingerprint: 0x0102_0304_0506_0708,
        };
        assert_eq!(
            np.encode(),
            [2, 6, 0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01]
        );
    }

    #[test]
    fn float_bit_patterns_survive_the_round_trip() {
        let weird = vec![-0.0, f64::NAN, f64::INFINITY, f64::MIN_POSITIVE, 1e-308];
        let resp = Response::Solved {
            x: weird.clone(),
            degraded: false,
        };
        let Response::Solved { x, .. } = Response::decode(&resp.encode()).unwrap() else {
            panic!("wrong variant");
        };
        let bits: Vec<u64> = x.iter().map(|v| v.to_bits()).collect();
        let expected: Vec<u64> = weird.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits, expected);
    }

    #[test]
    fn config_bytes_are_canonical() {
        // Equal configs encode equal bytes (the cache-key contract)...
        assert_eq!(
            config_bytes(&sample_config()),
            config_bytes(&sample_config())
        );
        // ...and different configs differ.
        let other = SolverConfig::builder()
            .stages(Stages::Two)
            .finish()
            .unwrap();
        assert_ne!(config_bytes(&sample_config()), config_bytes(&other));
    }

    #[test]
    fn malformed_frames_are_rejected_not_panicked_on() {
        // Empty payload.
        assert!(Request::decode(&[]).is_err());
        // Wrong version (the retired version 1 included).
        assert!(Request::decode(&[1, 4]).is_err());
        assert!(Request::decode(&[3, 4]).is_err());
        // Unknown tags.
        assert!(Request::decode(&[2, 200]).is_err());
        assert!(Response::decode(&[2, 200]).is_err());
        // Truncation at every prefix of a real message must error, never
        // panic or loop.
        let bytes = requests()
            .into_iter()
            .find_map(|r| match r {
                Request::SolveBatch { .. } => Some(r.encode()),
                _ => None,
            })
            .unwrap();
        for cut in 0..bytes.len() {
            assert!(Request::decode(&bytes[..cut]).is_err(), "prefix {cut}");
        }
        // Trailing garbage is an error too.
        let mut long = Request::Stats.encode();
        long.push(0);
        assert!(Request::decode(&long).is_err());
        // A vector length lying about the remaining frame is caught
        // before allocation.
        let mut lying = vec![PROTOCOL_VERSION, RESP_SOLVED];
        lying.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(Response::decode(&lying).is_err());
    }

    #[test]
    fn stats_derived_metrics() {
        let mut s = ServerStats {
            hits: 3,
            misses: 1,
            dispatch_batches: 2,
            coalesced_requests: 6,
            ..ServerStats::default()
        };
        assert_eq!(s.hit_rate(), 0.75);
        assert_eq!(s.coalescing_factor(), 3.0);
        s = ServerStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.coalescing_factor(), 0.0);
    }
}

//! # amc-serve — solver as a service
//!
//! The paper's economics are asymmetric: *programming* a matrix into
//! analog arrays is expensive, *solving* against programmed arrays is
//! cheap. Inside one process the `prepare`/`solve` split of
//! [`blockamc::solver`] already amortizes programming across
//! right-hand sides; this crate amortizes it across **clients and
//! time**. A long-running server keeps hot prepared solvers in a
//! capacity-bounded LFU cache, coalesces concurrent requests against
//! the same solver into shared engine batches, and answers over a
//! small framed wire protocol — turning array programming into a
//! one-time capital expense and making throughput, hit-rate, and tail
//! latency first-class, benchmarkable quantities.
//!
//! * [`wire`] — the versioned binary protocol (requests, responses,
//!   canonical [`SolverConfig`](blockamc::solver::SolverConfig)
//!   encoding).
//! * [`cache`] — the O(1) frequency-bucket LFU keyed by
//!   `(matrix fingerprint, config bytes, engine name + seed)`.
//! * [`server`] — the [`Transport`](server::Transport) abstraction
//!   (TCP + in-process loopback), the coalescing dispatcher, and
//!   backpressure.
//! * [`client`] — the blocking request/response client.
//! * [`loadgen`] — the closed-loop multi-client load generator behind
//!   `repro serve-bench`.
//!
//! With [`ServerConfig::aging`](server::ServerConfig::aging) set, every
//! cached solver additionally ages under a device lifetime model
//! ([`blockamc::aging`]): its virtual clock advances one tick per
//! dispatch round, the dispatcher probes its health (sentinel residual)
//! before serving, and an entry degraded past the threshold is either
//! served stale — when every coalesced request opted in with
//! `accept_degraded`, flagged `degraded` in the response — or evicted
//! (the `staleness_evictions` counter, disjoint from LFU capacity
//! `evictions`) and re-prepared fresh before serving.
//!
//! Results are **bit-identical** to calling
//! [`PreparedSolver::solve`](blockamc::solver::PreparedSolver::solve)
//! directly: floats cross the wire as exact bit patterns, cached
//! replicas inherit the prepare-time variation draw bitwise, and batch
//! sharding is worker-count-invariant. The end-to-end tests assert
//! equality with `==` on `f64`s, not with tolerances.
//!
//! ## Frame format, byte by byte
//!
//! Every message is one **frame** on the transport:
//!
//! ```text
//! offset  size  field
//! 0       4     payload length N, u32 little-endian (≤ 64 MiB)
//! 4       N     payload
//! ```
//!
//! (The in-process loopback transport carries the payload as one
//! message and drops the length prefix; TCP needs it to find frame
//! boundaries in the byte stream.)
//!
//! Every **payload** starts:
//!
//! ```text
//! offset  size  field
//! 0       1     protocol version, currently 2
//! 1       1     message tag
//! 2       …     tag-specific fields, packed in order, no padding
//! ```
//!
//! (Version 2 added degraded-mode serving: the `accept_degraded` /
//! `degraded` flags on solves and the two trailing stats counters.)
//!
//! All multi-byte integers are little-endian; `f64` travels as its
//! IEEE-754 bit pattern in a `u64` (bit-exact — `-0.0`, subnormals,
//! and NaN payloads survive). A `str` is a `u32` byte length followed
//! by UTF-8 bytes; a vector is a `u32` element count followed by its
//! elements.
//!
//! ### Composite encodings
//!
//! ```text
//! matrix      := rows u64 · cols u64 · rows*cols f64 (row-major)
//! matrix_ref  := 0x00 · matrix            (inline)
//!              | 0x01 · fingerprint u64   (cached)
//! converter   := 0x00                     (None)
//!              | 0x01 · bits u32 · v_range f64
//! io          := dac converter · adc converter · sh_droop f64
//! level       := 0x00                     (Pure)
//!              | 0x01 · io                (Macro)
//!              | 0x02 · io                (Bus)
//! config      := stages · split · capture_trace u8 · level_count u32 · level*
//!   stages    := 0x00 | 0x01 | 0x02 | 0x03 · depth u32
//!                (Original, One, Two, Multi(depth))
//!   split     := 0x00 | 0x01 · imbalance_weight f64
//!                (Halves, Searched)
//! engine_ref  := name str · seed u64
//! ```
//!
//! The `config` encoding is **canonical** (equal configs ⇒ equal
//! bytes), so the server uses it directly as the configuration
//! component of its cache key — see [`wire::config_bytes`].
//!
//! ### Requests (client → server)
//!
//! ```text
//! tag  message     fields after the tag byte
//! 0    Prepare     matrix · config · engine_ref
//! 1    Solve       matrix_ref · config · engine_ref · rhs vec<f64> ·
//!                  accept_degraded u8
//! 2    SolveBatch  matrix_ref · config · engine_ref · count u32 ·
//!                  (vec<f64>)* · accept_degraded u8
//! 3    Evict       fingerprint u64 · config · engine_ref
//! 4    Stats       (none)
//! 5    Shutdown    (none)
//! ```
//!
//! ### Responses (server → client)
//!
//! ```text
//! tag  message       fields after the tag byte
//! 0    Prepared      fingerprint u64 · hit u8
//! 1    Solved        x vec<f64> · degraded u8
//! 2    SolvedBatch   count u32 · (vec<f64>)* · degraded u8
//! 3    Evicted       found u8
//! 4    Stats         12 × u64: hits, misses, evictions, insertions,
//!                    entries, capacity, requests, solved_rhs,
//!                    dispatch_batches, coalesced_requests,
//!                    staleness_evictions, degraded_served
//! 5    Busy          (none)
//! 6    NotPrepared   fingerprint u64
//! 7    ShuttingDown  (none)
//! 8    Error         message str
//! ```
//!
//! Decoders reject wrong versions, unknown tags, truncated or
//! over-long payloads, and fields that fail domain validation — with
//! [`ServeError::Protocol`], never a panic.
//!
//! ## Example
//!
//! ```
//! use amc_serve::client::Client;
//! use amc_serve::server::{Server, ServerConfig};
//! use amc_serve::wire::{EngineRef, MatrixRef};
//! use blockamc::solver::SolverConfig;
//! use amc_linalg::Matrix;
//!
//! # fn main() -> Result<(), amc_serve::ServeError> {
//! let server = Server::with_builtin_engines(ServerConfig::default());
//! let mut client = Client::new(server.loopback());
//!
//! let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]).unwrap();
//! let config = SolverConfig::builder().finish().unwrap();
//! let engine = EngineRef::new("numeric", 0);
//!
//! let (fp, hit) = client.prepare(&a, &config, &engine)?;
//! assert!(!hit);
//! // Solve by fingerprint: the matrix never crosses the wire again.
//! let x = client.solve(MatrixRef::Cached(fp), &config, &engine, &[4.0, 3.0])?;
//! assert!((x[0] - 1.0).abs() < 1e-10 && (x[1] - 1.0).abs() < 1e-10);
//! assert_eq!(client.stats()?.hits, 1);
//! client.shutdown()?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod error;
pub mod loadgen;
pub mod server;
pub mod wire;

pub use error::{Result, ServeError};

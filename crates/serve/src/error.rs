//! Error type shared by the wire codec, transports, client, and server.

use std::fmt;
use std::io;

/// Convenience alias used throughout `amc-serve`.
pub type Result<T> = std::result::Result<T, ServeError>;

/// Everything that can go wrong between a client and the solver service.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// An underlying transport failed (socket error, broken pipe, …).
    Io(io::Error),
    /// A frame violated the wire protocol: bad version, unknown tag,
    /// truncated payload, or a field that fails validation on decode.
    Protocol(String),
    /// The server's pending queue is full; the request was rejected
    /// without queueing (the wire-level [`Busy`](crate::wire::Response::Busy)
    /// response). Back off and retry.
    Busy,
    /// A solve referenced a fingerprint that is not (or no longer) in
    /// the prepared-solver cache; send a `Prepare` or an inline matrix.
    NotPrepared {
        /// The matrix fingerprint the request referenced.
        fingerprint: u64,
    },
    /// The server reported a solver-side failure (engine build,
    /// preparation, or solve error), forwarded as text.
    Remote(String),
    /// The peer closed the connection, or the server is shutting down
    /// and will not process further work.
    Closed,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "transport I/O error: {e}"),
            ServeError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            ServeError::Busy => write!(f, "server busy: pending queue full"),
            ServeError::NotPrepared { fingerprint } => write!(
                f,
                "no prepared solver cached for matrix fingerprint {fingerprint:#018x}"
            ),
            ServeError::Remote(msg) => write!(f, "server-side solver error: {msg}"),
            ServeError::Closed => write!(f, "connection closed / server shutting down"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl ServeError {
    /// Shorthand for a [`ServeError::Protocol`] from anything printable.
    pub fn protocol(msg: impl Into<String>) -> Self {
        ServeError::Protocol(msg.into())
    }
}

//! Closed-loop multi-client load generator.
//!
//! Drives a running [`Server`] through in-process loopback connections:
//! `clients` threads each issue `requests_per_client` solves against a
//! shared pool of `distinct_matrices` matrices (closed loop — the next
//! request leaves when the previous response arrives). The pool is
//! prepared up front, so steady-state traffic measures the served
//! path: cache fetch, coalescing, dispatch, parallel batch solve.
//!
//! Everything is deterministic given the seed **except wall-clock
//! numbers** (throughput, latency percentiles) — the solutions
//! themselves are bit-reproducible, which the e2e tests assert
//! separately.
//!
//! No `rand` dependency: matrices and right-hand sides come from an
//! inline SplitMix64 stream, diagonally dominant so every generated
//! system is comfortably solvable at any size.

use std::sync::Mutex;
use std::time::Instant;

use amc_linalg::Matrix;
use blockamc::solver::SolverConfig;

use crate::client::Client;
use crate::error::{Result, ServeError};
use crate::server::Server;
use crate::wire::{EngineRef, MatrixRef, ServerStats};

/// Shape of one load-generation run.
#[derive(Debug, Clone)]
pub struct LoadGenConfig {
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Requests each client issues.
    pub requests_per_client: usize,
    /// Size of the shared matrix pool; smaller than the cache keeps
    /// every request hot, larger forces eviction churn.
    pub distinct_matrices: usize,
    /// Problem size `n` of every generated system.
    pub n: usize,
    /// Engine the solves run on.
    pub engine: EngineRef,
    /// Seed of the matrix/RHS/selection streams.
    pub seed: u64,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        LoadGenConfig {
            clients: 4,
            requests_per_client: 64,
            distinct_matrices: 4,
            n: 32,
            engine: EngineRef::new("numeric", 0),
            seed: 7,
        }
    }
}

/// What one run measured.
#[derive(Debug, Clone)]
pub struct LoadGenReport {
    /// Solve requests issued (excluding warm-up prepares).
    pub requests: u64,
    /// Requests answered with a solution.
    pub solved: u64,
    /// Requests rejected with `Busy` (each retried until solved).
    pub busy_rejections: u64,
    /// Wall-clock duration of the measured phase, seconds.
    pub elapsed_s: f64,
    /// Solved requests per second.
    pub throughput_rps: f64,
    /// Median request latency, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile request latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile request latency, milliseconds.
    pub p99_ms: f64,
    /// Server cache hit-rate over the whole run.
    pub hit_rate: f64,
    /// Mean requests folded into one dispatched batch.
    pub coalescing_factor: f64,
    /// Full server counter snapshot at the end of the run.
    pub server: ServerStats,
}

/// SplitMix64 step — the workspace-standard cheap deterministic stream.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform draw in `[-1, 1)`.
fn unit(state: &mut u64) -> f64 {
    (splitmix(state) >> 11) as f64 / (1u64 << 52) as f64 * 2.0 - 1.0
}

/// The load generator's `n×n` workload matrix for `seed`: random
/// entries in `[-1, 1)` with the diagonal lifted above each row's
/// absolute sum, so the system is strictly diagonally dominant (hence
/// nonsingular and well-conditioned) at every size.
pub fn workload_matrix(n: usize, seed: u64) -> Matrix {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xa076_1d64_78bd_642f;
    let mut data = vec![0.0; n * n];
    for row in 0..n {
        let mut row_sum = 0.0;
        for col in 0..n {
            let v = unit(&mut state);
            data[row * n + col] = v;
            row_sum += v.abs();
        }
        data[row * n + row] = row_sum + 1.0;
    }
    Matrix::from_vec(n, n, data).expect("n*n data")
}

/// The load generator's right-hand side stream: entry `k` of the
/// vector for (`seed`, `request`).
pub fn workload_rhs(n: usize, seed: u64, request: u64) -> Vec<f64> {
    let mut state = seed ^ request.wrapping_mul(0xd6e8_feb8_6659_fd93);
    (0..n).map(|_| unit(&mut state)).collect()
}

/// Runs the closed-loop load against `server` and aggregates the
/// report. The matrix pool is prepared before the clock starts.
///
/// # Errors
///
/// Transport or preparation failures; `Busy` rejections are part of
/// the workload (counted and retried), not errors.
pub fn run(server: &Server, cfg: &LoadGenConfig) -> Result<LoadGenReport> {
    let solver_config = SolverConfig::builder()
        .capture_trace(false)
        .finish()
        .map_err(|e| ServeError::Protocol(format!("invalid load-gen solver config: {e}")))?;
    let matrices: Vec<Matrix> = (0..cfg.distinct_matrices.max(1))
        .map(|i| workload_matrix(cfg.n, cfg.seed.wrapping_add(i as u64)))
        .collect();

    // Warm-up: prepare the pool once, outside the measured window.
    let mut setup = Client::new(server.loopback());
    let fingerprints: Vec<u64> = matrices
        .iter()
        .map(|m| {
            setup
                .prepare(m, &solver_config, &cfg.engine)
                .map(|(fp, _)| fp)
        })
        .collect::<Result<_>>()?;

    let latencies = Mutex::new(Vec::new());
    let busy = Mutex::new(0u64);
    let started = Instant::now();
    std::thread::scope(|scope| -> Result<()> {
        let mut handles = Vec::new();
        for client_idx in 0..cfg.clients.max(1) {
            let transport = server.loopback();
            let solver_config = &solver_config;
            let matrices = &matrices;
            let fingerprints = &fingerprints;
            let latencies = &latencies;
            let busy = &busy;
            handles.push(scope.spawn(move || -> Result<()> {
                let mut client = Client::new(transport);
                let mut select = cfg.seed ^ (client_idx as u64).wrapping_mul(0x517c_c1b7_2722_0a95);
                let mut my_latencies = Vec::with_capacity(cfg.requests_per_client);
                let mut my_busy = 0u64;
                for request in 0..cfg.requests_per_client {
                    let pick = (splitmix(&mut select) % matrices.len() as u64) as usize;
                    let rhs = workload_rhs(cfg.n, cfg.seed ^ client_idx as u64, request as u64);
                    let t0 = Instant::now();
                    let mut inline = false;
                    loop {
                        let result = client.solve(
                            if inline {
                                MatrixRef::Inline(matrices[pick].clone())
                            } else {
                                MatrixRef::Cached(fingerprints[pick])
                            },
                            solver_config,
                            &cfg.engine,
                            &rhs,
                        );
                        match result {
                            Ok(_) => break,
                            // Backpressure: back off and retry — the
                            // closed loop's natural response to Busy.
                            Err(ServeError::Busy) => {
                                my_busy += 1;
                                std::thread::sleep(std::time::Duration::from_micros(200));
                            }
                            // Evicted under churn (possibly between
                            // resolve and dispatch): re-submit inline
                            // until a dispatch wins the race.
                            Err(ServeError::NotPrepared { .. }) => inline = true,
                            Err(e) => return Err(e),
                        }
                    }
                    my_latencies.push(t0.elapsed().as_secs_f64() * 1e3);
                }
                latencies.lock().unwrap().extend(my_latencies);
                *busy.lock().unwrap() += my_busy;
                Ok(())
            }));
        }
        for handle in handles {
            handle.join().expect("load client panicked")?;
        }
        Ok(())
    })?;
    let elapsed_s = started.elapsed().as_secs_f64();

    let mut lat = latencies.into_inner().unwrap();
    lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let server_stats = server.stats();
    let solved = lat.len() as u64;
    Ok(LoadGenReport {
        requests: solved,
        solved,
        busy_rejections: busy.into_inner().unwrap(),
        elapsed_s,
        throughput_rps: if elapsed_s > 0.0 {
            solved as f64 / elapsed_s
        } else {
            0.0
        },
        p50_ms: percentile(&lat, 50.0),
        p95_ms: percentile(&lat, 95.0),
        p99_ms: percentile(&lat, 99.0),
        hit_rate: server_stats.hit_rate(),
        coalescing_factor: server_stats.coalescing_factor(),
        server: server_stats,
    })
}

/// Nearest-rank percentile of an ascending-sorted slice (0 for empty).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_matrices_are_deterministic_and_dominant() {
        let a = workload_matrix(16, 3);
        let b = workload_matrix(16, 3);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(
            a.fingerprint(),
            workload_matrix(16, 4).fingerprint(),
            "seed must matter"
        );
        // Strict diagonal dominance.
        for i in 0..16 {
            let row_sum: f64 = (0..16).filter(|&j| j != i).map(|j| a[(i, j)].abs()).sum();
            assert!(a[(i, i)] > row_sum, "row {i} not dominant");
        }
        // RHS stream is deterministic too.
        assert_eq!(workload_rhs(8, 1, 2), workload_rhs(8, 1, 2));
        assert_ne!(workload_rhs(8, 1, 2), workload_rhs(8, 1, 3));
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 50.0), 3.0); // rank round(1.5) = 2
        assert_eq!(percentile(&v, 100.0), 4.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }
}

//! Closed-loop multi-client load generator.
//!
//! Drives a running [`Server`] through in-process loopback connections:
//! `clients` threads each issue `requests_per_client` solves against a
//! shared pool of `distinct_matrices` matrices (closed loop — the next
//! request leaves when the previous response arrives). The pool is
//! prepared up front, so steady-state traffic measures the served
//! path: cache fetch, coalescing, dispatch, parallel batch solve.
//!
//! Everything is deterministic given the seed **except wall-clock
//! numbers** (throughput, latency percentiles) — the solutions
//! themselves are bit-reproducible, which the e2e tests assert
//! separately.
//!
//! No `rand` dependency: matrices and right-hand sides come from an
//! inline SplitMix64 stream, diagonally dominant so every generated
//! system is comfortably solvable at any size.

use std::sync::Mutex;
use std::time::Instant;

use amc_linalg::Matrix;
use amc_obs::{MetricsSnapshot, Registry};
use blockamc::solver::SolverConfig;

use crate::client::Client;
use crate::error::{Result, ServeError};
use crate::server::Server;
use crate::wire::{EngineRef, MatrixRef, ServerStats};

/// Shape of one load-generation run.
#[derive(Debug, Clone)]
pub struct LoadGenConfig {
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Requests each client issues.
    pub requests_per_client: usize,
    /// Size of the shared matrix pool; smaller than the cache keeps
    /// every request hot, larger forces eviction churn.
    pub distinct_matrices: usize,
    /// Problem size `n` of every generated system.
    pub n: usize,
    /// Engine the solves run on.
    pub engine: EngineRef,
    /// Seed of the matrix/RHS/selection streams.
    pub seed: u64,
    /// Maximum `Busy` retries per request before the request is
    /// abandoned (counted as a give-up, not an error). Bounds the
    /// formerly unbounded retry loop so a saturated server cannot hang
    /// the generator.
    pub busy_retry_cap: u32,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        LoadGenConfig {
            clients: 4,
            requests_per_client: 64,
            distinct_matrices: 4,
            n: 32,
            engine: EngineRef::new("numeric", 0),
            seed: 7,
            busy_retry_cap: 64,
        }
    }
}

/// What one run measured.
#[derive(Debug, Clone)]
pub struct LoadGenReport {
    /// Solve requests attempted (excluding warm-up prepares); exceeds
    /// `solved` exactly when requests gave up under sustained `Busy`.
    pub requests: u64,
    /// Requests answered with a solution.
    pub solved: u64,
    /// `Busy` rejections observed (each followed by a backed-off retry
    /// while under the cap).
    pub busy_rejections: u64,
    /// Requests abandoned after [`LoadGenConfig::busy_retry_cap`]
    /// consecutive `Busy` rejections.
    pub busy_giveups: u64,
    /// Wall-clock duration of the measured phase, seconds.
    pub elapsed_s: f64,
    /// Solved requests per second.
    pub throughput_rps: f64,
    /// Median request latency, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile request latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile request latency, milliseconds.
    pub p99_ms: f64,
    /// Server cache hit-rate over the whole run.
    pub hit_rate: f64,
    /// Mean requests folded into one dispatched batch.
    pub coalescing_factor: f64,
    /// Full server counter snapshot at the end of the run.
    pub server: ServerStats,
    /// Generator-side metrics (`loadgen.busy_retries`,
    /// `loadgen.busy_giveups`, `loadgen.latency_us`) snapshotted at the
    /// end of the run.
    pub metrics: MetricsSnapshot,
}

/// Backoff before Busy retry `attempt` (0-based): 100 µs doubling per
/// attempt, capped at ~3.2 ms, plus a seeded jitter of up to the base
/// drawn from `jitter_state` — deterministic per client stream, and
/// desynchronized across clients so they don't re-slam the queue in
/// lockstep.
fn busy_backoff(attempt: u32, jitter_state: &mut u64) -> std::time::Duration {
    let base_us = 100u64 << attempt.min(5);
    let jitter_us = splitmix(jitter_state) % base_us;
    std::time::Duration::from_micros(base_us + jitter_us)
}

/// SplitMix64 step — the workspace-standard cheap deterministic stream.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform draw in `[-1, 1)`.
fn unit(state: &mut u64) -> f64 {
    (splitmix(state) >> 11) as f64 / (1u64 << 52) as f64 * 2.0 - 1.0
}

/// The load generator's `n×n` workload matrix for `seed`: random
/// entries in `[-1, 1)` with the diagonal lifted above each row's
/// absolute sum, so the system is strictly diagonally dominant (hence
/// nonsingular and well-conditioned) at every size.
pub fn workload_matrix(n: usize, seed: u64) -> Matrix {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xa076_1d64_78bd_642f;
    let mut data = vec![0.0; n * n];
    for row in 0..n {
        let mut row_sum = 0.0;
        for col in 0..n {
            let v = unit(&mut state);
            data[row * n + col] = v;
            row_sum += v.abs();
        }
        data[row * n + row] = row_sum + 1.0;
    }
    Matrix::from_vec(n, n, data).expect("n*n data")
}

/// The load generator's right-hand side stream: entry `k` of the
/// vector for (`seed`, `request`).
pub fn workload_rhs(n: usize, seed: u64, request: u64) -> Vec<f64> {
    let mut state = seed ^ request.wrapping_mul(0xd6e8_feb8_6659_fd93);
    (0..n).map(|_| unit(&mut state)).collect()
}

/// Runs the closed-loop load against `server` and aggregates the
/// report. The matrix pool is prepared before the clock starts.
///
/// # Errors
///
/// Transport or preparation failures; `Busy` rejections are part of
/// the workload (counted and retried), not errors.
pub fn run(server: &Server, cfg: &LoadGenConfig) -> Result<LoadGenReport> {
    let solver_config = SolverConfig::builder()
        .capture_trace(false)
        .finish()
        .map_err(|e| ServeError::Protocol(format!("invalid load-gen solver config: {e}")))?;
    let matrices: Vec<Matrix> = (0..cfg.distinct_matrices.max(1))
        .map(|i| workload_matrix(cfg.n, cfg.seed.wrapping_add(i as u64)))
        .collect();

    // Warm-up: prepare the pool once, outside the measured window.
    let mut setup = Client::new(server.loopback());
    let fingerprints: Vec<u64> = matrices
        .iter()
        .map(|m| {
            setup
                .prepare(m, &solver_config, &cfg.engine)
                .map(|(fp, _)| fp)
        })
        .collect::<Result<_>>()?;

    let metrics = Registry::new();
    let busy_retries = metrics.counter("loadgen.busy_retries");
    let busy_giveups = metrics.counter("loadgen.busy_giveups");
    let latency_us = metrics.histogram("loadgen.latency_us");
    let latencies = Mutex::new(Vec::new());
    let started = Instant::now();
    std::thread::scope(|scope| -> Result<()> {
        let mut handles = Vec::new();
        for client_idx in 0..cfg.clients.max(1) {
            let transport = server.loopback();
            let solver_config = &solver_config;
            let matrices = &matrices;
            let fingerprints = &fingerprints;
            let latencies = &latencies;
            let busy_retries = &busy_retries;
            let busy_giveups = &busy_giveups;
            let latency_us = &latency_us;
            handles.push(scope.spawn(move || -> Result<()> {
                let mut client = Client::new(transport);
                let mut select = cfg.seed ^ (client_idx as u64).wrapping_mul(0x517c_c1b7_2722_0a95);
                let mut jitter = cfg.seed ^ (client_idx as u64).wrapping_mul(0xd6e8_feb8_6659_fd93);
                let mut my_latencies = Vec::with_capacity(cfg.requests_per_client);
                for request in 0..cfg.requests_per_client {
                    let pick = (splitmix(&mut select) % matrices.len() as u64) as usize;
                    let rhs = workload_rhs(cfg.n, cfg.seed ^ client_idx as u64, request as u64);
                    let t0 = Instant::now();
                    let mut inline = false;
                    let mut busy_attempts = 0u32;
                    loop {
                        let result = client.solve(
                            if inline {
                                MatrixRef::Inline(matrices[pick].clone())
                            } else {
                                MatrixRef::Cached(fingerprints[pick])
                            },
                            solver_config,
                            &cfg.engine,
                            &rhs,
                        );
                        match result {
                            Ok(_) => {
                                let elapsed = t0.elapsed();
                                latency_us.record(elapsed.as_micros() as u64);
                                my_latencies.push(elapsed.as_secs_f64() * 1e3);
                                break;
                            }
                            // Backpressure: back off (doubling, seeded
                            // jitter) and retry — up to the cap, past
                            // which the request is abandoned rather
                            // than hammering a saturated server
                            // forever.
                            Err(ServeError::Busy) => {
                                if busy_attempts >= cfg.busy_retry_cap {
                                    busy_giveups.inc();
                                    break;
                                }
                                busy_retries.inc();
                                std::thread::sleep(busy_backoff(busy_attempts, &mut jitter));
                                busy_attempts += 1;
                            }
                            // Evicted under churn (possibly between
                            // resolve and dispatch): re-submit inline
                            // until a dispatch wins the race.
                            Err(ServeError::NotPrepared { .. }) => inline = true,
                            Err(e) => return Err(e),
                        }
                    }
                }
                latencies.lock().unwrap().extend(my_latencies);
                Ok(())
            }));
        }
        for handle in handles {
            handle.join().expect("load client panicked")?;
        }
        Ok(())
    })?;
    let elapsed_s = started.elapsed().as_secs_f64();

    let mut lat = latencies.into_inner().unwrap();
    lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let server_stats = server.stats();
    let solved = lat.len() as u64;
    Ok(LoadGenReport {
        requests: (cfg.clients.max(1) * cfg.requests_per_client) as u64,
        solved,
        busy_rejections: busy_retries.get(),
        busy_giveups: busy_giveups.get(),
        elapsed_s,
        throughput_rps: if elapsed_s > 0.0 {
            solved as f64 / elapsed_s
        } else {
            0.0
        },
        p50_ms: percentile(&lat, 50.0),
        p95_ms: percentile(&lat, 95.0),
        p99_ms: percentile(&lat, 99.0),
        hit_rate: server_stats.hit_rate(),
        coalescing_factor: server_stats.coalescing_factor(),
        server: server_stats,
        metrics: metrics.snapshot(),
    })
}

/// Nearest-rank percentile of an ascending-sorted slice (0 for empty).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_matrices_are_deterministic_and_dominant() {
        let a = workload_matrix(16, 3);
        let b = workload_matrix(16, 3);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(
            a.fingerprint(),
            workload_matrix(16, 4).fingerprint(),
            "seed must matter"
        );
        // Strict diagonal dominance.
        for i in 0..16 {
            let row_sum: f64 = (0..16).filter(|&j| j != i).map(|j| a[(i, j)].abs()).sum();
            assert!(a[(i, i)] > row_sum, "row {i} not dominant");
        }
        // RHS stream is deterministic too.
        assert_eq!(workload_rhs(8, 1, 2), workload_rhs(8, 1, 2));
        assert_ne!(workload_rhs(8, 1, 2), workload_rhs(8, 1, 3));
    }

    #[test]
    fn busy_backoff_doubles_caps_and_jitters_deterministically() {
        let mut jitter = 42u64;
        let mut prev_base = 0u64;
        for attempt in 0..8 {
            let base_us = 100u64 << attempt.min(5);
            let d = busy_backoff(attempt, &mut jitter);
            let us = d.as_micros() as u64;
            assert!(us >= base_us && us < 2 * base_us, "attempt {attempt}: {us}");
            assert!(base_us >= prev_base, "base must be non-decreasing");
            prev_base = base_us;
        }
        // Capped: attempts past 5 keep the 3.2 ms base.
        let mut j = 3u64;
        assert!(busy_backoff(7, &mut j).as_micros() < 6400);
        // Same stream, same delays.
        let (mut a, mut b) = (7u64, 7u64);
        for attempt in 0..6 {
            assert_eq!(busy_backoff(attempt, &mut a), busy_backoff(attempt, &mut b));
        }
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 50.0), 3.0); // rank round(1.5) = 2
        assert_eq!(percentile(&v, 100.0), 4.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }
}

//! Blocking request/response client over any [`Transport`].

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use amc_linalg::Matrix;
use blockamc::solver::SolverConfig;

use crate::error::{Result, ServeError};
use crate::server::{Received, TcpTransport, Transport};
use crate::wire::{EngineRef, MatrixRef, Request, Response, ServerStats};

/// A synchronous client: one request in flight at a time, matching the
/// server's one-connection-one-stream model. Construct over TCP with
/// [`Client::connect`] or in-process with
/// [`Server::loopback`](crate::server::Server::loopback) +
/// [`Client::new`].
#[derive(Debug)]
pub struct Client<T: Transport> {
    transport: T,
}

impl Client<TcpTransport> {
    /// Connects to a TCP server.
    ///
    /// # Errors
    ///
    /// Socket connection/configuration failures.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self> {
        let stream = TcpStream::connect(addr)?;
        Ok(Client::new(TcpTransport::new(stream)?))
    }
}

impl<T: Transport> Client<T> {
    /// Wraps a connected transport.
    pub fn new(transport: T) -> Self {
        Client { transport }
    }

    /// Sends one request and blocks for its response.
    ///
    /// # Errors
    ///
    /// Transport failures, [`ServeError::Closed`] if the connection
    /// drops before a response arrives, and [`ServeError::Protocol`]
    /// for an undecodable response.
    pub fn request(&mut self, request: &Request) -> Result<Response> {
        self.transport.send(&request.encode())?;
        loop {
            match self.transport.recv(Duration::from_millis(50))? {
                Received::Frame(payload) => return Response::decode(&payload),
                Received::Closed => return Err(ServeError::Closed),
                Received::Idle => continue,
            }
        }
    }

    /// Prepares `matrix` on the server, returning `(fingerprint,
    /// cache_hit)`.
    ///
    /// # Errors
    ///
    /// Transport failures and server-side preparation errors
    /// ([`ServeError::Remote`]).
    pub fn prepare(
        &mut self,
        matrix: &Matrix,
        config: &SolverConfig,
        engine: &EngineRef,
    ) -> Result<(u64, bool)> {
        match self.request(&Request::Prepare {
            matrix: matrix.clone(),
            config: config.clone(),
            engine: engine.clone(),
        })? {
            Response::Prepared { fingerprint, hit } => Ok((fingerprint, hit)),
            other => Err(unexpected(other)),
        }
    }

    /// Solves one right-hand side.
    ///
    /// # Errors
    ///
    /// [`ServeError::Busy`] when the queue is full,
    /// [`ServeError::NotPrepared`] for an unknown cached fingerprint,
    /// [`ServeError::Remote`] for solver-side failures, and transport
    /// failures.
    pub fn solve(
        &mut self,
        matrix: MatrixRef,
        config: &SolverConfig,
        engine: &EngineRef,
        rhs: &[f64],
    ) -> Result<Vec<f64>> {
        self.solve_accepting(matrix, config, engine, rhs, false)
            .map(|(x, _)| x)
    }

    /// [`Client::solve`] with an explicit stale-but-fast opt-in: when
    /// `accept_degraded` is set, an aging server serves a solver its
    /// health monitor has flagged as degraded rather than evicting and
    /// re-preparing it. Returns the solution plus whether it actually
    /// came from a degraded solver.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Client::solve`].
    pub fn solve_accepting(
        &mut self,
        matrix: MatrixRef,
        config: &SolverConfig,
        engine: &EngineRef,
        rhs: &[f64],
        accept_degraded: bool,
    ) -> Result<(Vec<f64>, bool)> {
        match self.request(&Request::Solve {
            matrix,
            config: config.clone(),
            engine: engine.clone(),
            rhs: rhs.to_vec(),
            accept_degraded,
        })? {
            Response::Solved { x, degraded } => Ok((x, degraded)),
            other => Err(unexpected(other)),
        }
    }

    /// Solves a batch of right-hand sides; solutions come back in input
    /// order.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Client::solve`].
    pub fn solve_batch(
        &mut self,
        matrix: MatrixRef,
        config: &SolverConfig,
        engine: &EngineRef,
        batch: Vec<Vec<f64>>,
    ) -> Result<Vec<Vec<f64>>> {
        self.solve_batch_accepting(matrix, config, engine, batch, false)
            .map(|(xs, _)| xs)
    }

    /// [`Client::solve_batch`] with the stale-but-fast opt-in of
    /// [`Client::solve_accepting`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Client::solve`].
    pub fn solve_batch_accepting(
        &mut self,
        matrix: MatrixRef,
        config: &SolverConfig,
        engine: &EngineRef,
        batch: Vec<Vec<f64>>,
        accept_degraded: bool,
    ) -> Result<(Vec<Vec<f64>>, bool)> {
        match self.request(&Request::SolveBatch {
            matrix,
            config: config.clone(),
            engine: engine.clone(),
            batch,
            accept_degraded,
        })? {
            Response::SolvedBatch { xs, degraded } => Ok((xs, degraded)),
            other => Err(unexpected(other)),
        }
    }

    /// Evicts the cached solver under the exact key; `true` if it was
    /// present.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn evict(
        &mut self,
        fingerprint: u64,
        config: &SolverConfig,
        engine: &EngineRef,
    ) -> Result<bool> {
        match self.request(&Request::Evict {
            fingerprint,
            config: config.clone(),
            engine: engine.clone(),
        })? {
            Response::Evicted { found } => Ok(found),
            other => Err(unexpected(other)),
        }
    }

    /// Reads the server's counters.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn stats(&mut self) -> Result<ServerStats> {
        match self.request(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(unexpected(other)),
        }
    }

    /// Asks the server to shut down.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn shutdown(&mut self) -> Result<()> {
        match self.request(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected(other)),
        }
    }
}

/// Maps a response that doesn't match the request's happy path onto the
/// corresponding error.
fn unexpected(response: Response) -> ServeError {
    match response {
        Response::Busy => ServeError::Busy,
        Response::NotPrepared { fingerprint } => ServeError::NotPrepared { fingerprint },
        Response::ShuttingDown => ServeError::Closed,
        Response::Error { message } => ServeError::Remote(message),
        other => ServeError::protocol(format!("unexpected response variant: {other:?}")),
    }
}

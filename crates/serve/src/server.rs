//! The mux server: transports, the coalescing dispatcher, and the
//! request handlers.
//!
//! ## Threading model
//!
//! * One **connection loop** per transport ([`Server::serve_transport`]),
//!   decoding requests and blocking on their replies — a connection is a
//!   serial request/response stream, exactly like the client sees it.
//! * A fixed pool of **solver workers** (spawned at [`Server::new`])
//!   drains the dispatch queue. Each round, a worker claims *one cache
//!   key* and takes **every** job queued under it — that is the
//!   coalescing step — flattens them into a single batch, clones the
//!   cached replica (a short cache-lock hold; the solve itself runs
//!   unlocked), and solves through
//!   [`SolverReplica::solve_batch_parallel`], which shards the batch
//!   over an `amc-par` work-stealing pool.
//! * While a key is **active** (being solved), newly arriving jobs for
//!   it queue up but the key is not re-enqueued; the worker re-enqueues
//!   it on release if jobs accumulated. Concurrent requests against a
//!   hot solver therefore pile into shared batches naturally.
//!
//! ## Backpressure
//!
//! The dispatch queue is bounded by [`ServerConfig::queue_capacity`]
//! right-hand sides. A submit that would exceed the bound is rejected
//! *immediately* with [`Response::Busy`] — the request is never queued,
//! the connection never blocks, and the queue cannot grow without
//! bound. Clients are expected to back off and retry.
//!
//! ## Determinism
//!
//! Cache hits and coalescing are invisible in the numbers: a cached
//! replica carries the one variation draw taken at prepare time, clones
//! inherit it bitwise, and batch sharding is bit-identical at any
//! worker count — so a coalesced, cached, sharded solve returns exactly
//! the bytes a direct [`PreparedSolver::solve`] would have.
//!
//! [`Response::Busy`]: crate::wire::Response::Busy
//! [`PreparedSolver::solve`]: blockamc::solver::PreparedSolver::solve
//! [`SolverReplica::solve_batch_parallel`]: blockamc::solver::SolverReplica::solve_batch_parallel

use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use amc_linalg::Matrix;
use amc_obs::{Counter, Histogram, MetricsSnapshot, Recorder, Registry, TraceSession};
use blockamc::aging::{AgedSolver, AgingModel};
use blockamc::engine::{AmcEngine, EngineRegistry};
use blockamc::solver::{BlockAmcSolver, SolverConfig, SolverReplica};

use crate::cache::{CacheKey, LfuCache};
use crate::error::{Result, ServeError};
use crate::wire::{EngineRef, MatrixRef, Request, Response, ServerStats, MAX_FRAME_LEN};

/// How often blocked receives wake up to check for server shutdown.
const POLL: Duration = Duration::from_millis(25);

/// A cached prepared solver: an owned replica over a type-erased engine,
/// cloneable onto worker threads (`Send` is compile-time asserted in
/// `blockamc::solver`).
pub type CachedSolver = SolverReplica<Box<dyn AmcEngine>>;

/// One cache slot: the bare replica on an ageless server, or the aging
/// wrapper (replica + virtual clock + pristine snapshots) when
/// [`ServerConfig::aging`] is set.
#[derive(Clone)]
enum Entry {
    Plain(CachedSolver),
    Aged(Box<AgedSolver<Box<dyn AmcEngine>>>),
}

// ---------------------------------------------------------------------
// Transports.
// ---------------------------------------------------------------------

/// Outcome of one [`Transport::recv`] poll.
#[derive(Debug)]
pub enum Received {
    /// A complete frame payload (length prefix stripped).
    Frame(Vec<u8>),
    /// The peer closed the connection.
    Closed,
    /// The poll interval elapsed without a complete frame; check
    /// shutdown and poll again.
    Idle,
}

/// A bidirectional frame pipe. Implementations own the framing (length
/// prefix on TCP, message-per-send on the in-process loopback); the
/// payloads they carry are [`Request::encode`]/[`Response::encode`]
/// bytes.
pub trait Transport: Send {
    /// Sends one frame.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on transport failure, [`ServeError::Closed`]
    /// when the peer is gone.
    fn send(&mut self, payload: &[u8]) -> Result<()>;

    /// Waits up to `poll` for a complete frame.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on transport failure, [`ServeError::Protocol`]
    /// for an over-long frame announcement.
    fn recv(&mut self, poll: Duration) -> Result<Received>;
}

/// [`Transport`] over a [`TcpStream`]: `u32` little-endian length
/// prefix + payload, with an incremental reassembly buffer so a frame
/// split across packets (or across poll timeouts) is never corrupted.
#[derive(Debug)]
pub struct TcpTransport {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl TcpTransport {
    /// Wraps a connected stream (enables `TCP_NODELAY`; frames are
    /// latency-sensitive and self-contained).
    ///
    /// # Errors
    ///
    /// Socket-option failures.
    pub fn new(stream: TcpStream) -> std::io::Result<Self> {
        stream.set_nodelay(true)?;
        Ok(TcpTransport {
            stream,
            buf: Vec::new(),
        })
    }

    /// Extracts one complete frame from the reassembly buffer, if there
    /// is one.
    fn take_frame(&mut self) -> Result<Option<Vec<u8>>> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.buf[..4].try_into().unwrap()) as usize;
        if len > MAX_FRAME_LEN {
            return Err(ServeError::protocol(format!(
                "announced frame length {len} exceeds the {MAX_FRAME_LEN}-byte cap"
            )));
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        let payload = self.buf[4..4 + len].to_vec();
        self.buf.drain(..4 + len);
        Ok(Some(payload))
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, payload: &[u8]) -> Result<()> {
        let len = u32::try_from(payload.len())
            .map_err(|_| ServeError::protocol("frame payload exceeds u32 length"))?;
        self.stream.write_all(&len.to_le_bytes())?;
        self.stream.write_all(payload)?;
        self.stream.flush()?;
        Ok(())
    }

    fn recv(&mut self, poll: Duration) -> Result<Received> {
        if let Some(frame) = self.take_frame()? {
            return Ok(Received::Frame(frame));
        }
        self.stream
            .set_read_timeout(Some(poll.max(Duration::from_millis(1))))?;
        let mut chunk = [0u8; 8192];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => return Ok(Received::Closed),
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    if let Some(frame) = self.take_frame()? {
                        return Ok(Received::Frame(frame));
                    }
                    // Mid-frame: keep reading within this poll.
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(Received::Idle)
                }
                Err(e) if e.kind() == std::io::ErrorKind::ConnectionReset => {
                    return Ok(Received::Closed)
                }
                Err(e) => return Err(e.into()),
            }
        }
    }
}

/// In-process [`Transport`]: a pair of `mpsc` channels. Lets tests and
/// benches run the full client/server protocol — framing, dispatch,
/// coalescing, backpressure — without sockets.
#[derive(Debug)]
pub struct LoopbackTransport {
    tx: mpsc::Sender<Vec<u8>>,
    rx: mpsc::Receiver<Vec<u8>>,
}

/// Creates a connected loopback pair: frames sent on one end arrive on
/// the other.
pub fn loopback_pair() -> (LoopbackTransport, LoopbackTransport) {
    let (a_tx, b_rx) = mpsc::channel();
    let (b_tx, a_rx) = mpsc::channel();
    (
        LoopbackTransport { tx: a_tx, rx: a_rx },
        LoopbackTransport { tx: b_tx, rx: b_rx },
    )
}

impl Transport for LoopbackTransport {
    fn send(&mut self, payload: &[u8]) -> Result<()> {
        self.tx
            .send(payload.to_vec())
            .map_err(|_| ServeError::Closed)
    }

    fn recv(&mut self, poll: Duration) -> Result<Received> {
        match self.rx.recv_timeout(poll) {
            Ok(frame) => Ok(Received::Frame(frame)),
            Err(RecvTimeoutError::Timeout) => Ok(Received::Idle),
            Err(RecvTimeoutError::Disconnected) => Ok(Received::Closed),
        }
    }
}

// ---------------------------------------------------------------------
// Server configuration and state.
// ---------------------------------------------------------------------

/// Lifetime configuration of a serving cache: every cached solver is
/// wrapped in an [`AgedSolver`] whose virtual clock advances one tick
/// per dispatch round (**serve-then-age**: a batch is served against
/// the state the previous round left behind, so the first request
/// against a fresh entry is bit-identical to a direct solve).
///
/// Before each round the dispatcher probes the entry's health (sentinel
/// residual). Past `max_residual` the entry is *degraded*: it is served
/// anyway — flagged `degraded = true` — when every coalesced request
/// opted in with `accept_degraded`, and otherwise evicted (counted in
/// `staleness_evictions`) and re-prepared from the retained pristine
/// matrix before serving fresh.
#[derive(Debug, Clone, Copy)]
pub struct ServeAging {
    /// Device lifetime model every cached solver ages under.
    pub model: AgingModel,
    /// Health threshold: a sentinel residual above this marks the
    /// cached solver degraded.
    pub max_residual: f64,
    /// Base seed of the per-entry aging streams (combined with the
    /// matrix fingerprint, so distinct matrices age independently but
    /// replays are deterministic).
    pub seed: u64,
}

/// Tunables of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum number of cached prepared solvers (LFU-evicted beyond
    /// this; clamped to at least 1).
    pub cache_capacity: usize,
    /// Dispatcher threads draining the pending queue. **`0` is an
    /// accept-only mode**: requests queue (and overflow to `Busy`) but
    /// nothing ever drains — only useful to tests that need a
    /// deterministically saturated queue.
    pub solver_workers: usize,
    /// Worker count each dispatched batch is sharded over
    /// ([`SolverReplica::solve_batch_parallel`]); 1 = serial solves.
    ///
    /// [`SolverReplica::solve_batch_parallel`]: blockamc::solver::SolverReplica::solve_batch_parallel
    pub batch_workers: usize,
    /// Bound on queued right-hand sides across all keys; a submit that
    /// would exceed it gets [`Response::Busy`].
    pub queue_capacity: usize,
    /// Lifetime/aging behavior of cached solvers; `None` (the default)
    /// means arrays never age and the server behaves exactly as before
    /// aging existed.
    pub aging: Option<ServeAging>,
    /// Trace session connection loops and dispatcher workers record
    /// spans into (`serve.decode` → `serve.lookup` → `serve.wait` →
    /// `serve.dispatch` → `serve.encode`). `None` (the default) records
    /// nothing; either way the served numbers are bit-identical —
    /// tracing is strictly read-only.
    pub trace: Option<TraceSession>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            cache_capacity: 8,
            solver_workers: 2,
            batch_workers: 1,
            queue_capacity: 64,
            aging: None,
            trace: None,
        }
    }
}

/// What a dispatched job replies with: the solutions in input order,
/// plus whether they came from a degraded (stale) solver.
type JobReply = std::result::Result<(Vec<Vec<f64>>, bool), ServeError>;

/// One queued unit of work: the right-hand sides of a single request,
/// its stale-but-fast opt-in, and the channel its connection loop
/// blocks on.
struct Job {
    rhs: Vec<Vec<f64>>,
    accept_degraded: bool,
    reply: mpsc::Sender<JobReply>,
    /// When the job entered the queue — the coalesce-wait clock
    /// (`serve.wait_us`) starts here and stops when a worker claims the
    /// key.
    enqueued: Instant,
}

/// Dispatcher state behind one mutex: which keys have work, which are
/// being solved, and how full the queue is.
#[derive(Default)]
struct DispatchState {
    /// Keys with queued jobs, not currently active.
    ready: VecDeque<CacheKey>,
    /// Queued jobs per key.
    pending: HashMap<CacheKey, Vec<Job>>,
    /// Keys a worker is currently solving.
    active: HashSet<CacheKey>,
    /// Total queued right-hand sides (the backpressure gauge).
    queued_rhs: usize,
    /// Mirrors `Inner::closing` under the mutex for correct condvar use.
    shutdown: bool,
}

/// Throughput counters (the non-cache half of [`ServerStats`]), held as
/// handles into the server's metrics registry: the same saturating
/// counters answer the wire `Stats` request and [`Server::metrics`],
/// one surface instead of two books.
struct Counters {
    requests: Counter,
    solved_rhs: Counter,
    dispatch_batches: Counter,
    coalesced_requests: Counter,
    staleness_evictions: Counter,
    degraded_served: Counter,
    busy_rejections: Counter,
    /// Wall time of one dispatched batch solve, µs.
    dispatch_us: Histogram,
    /// Queue-entry → worker-claim latency per job, µs (the price of
    /// coalescing).
    wait_us: Histogram,
    /// Right-hand sides per dispatched batch (the coalescing factor's
    /// numerator; `dispatch_batches` is its denominator).
    batch_rhs: Histogram,
}

impl Counters {
    fn new(metrics: &Registry) -> Counters {
        Counters {
            requests: metrics.counter("serve.requests"),
            solved_rhs: metrics.counter("serve.solved_rhs"),
            dispatch_batches: metrics.counter("serve.dispatch_batches"),
            coalesced_requests: metrics.counter("serve.coalesced_requests"),
            staleness_evictions: metrics.counter("serve.staleness_evictions"),
            degraded_served: metrics.counter("serve.degraded_served"),
            busy_rejections: metrics.counter("serve.busy_rejections"),
            dispatch_us: metrics.histogram("serve.dispatch_us"),
            wait_us: metrics.histogram("serve.wait_us"),
            batch_rhs: metrics.histogram("serve.batch_rhs"),
        }
    }
}

struct Inner {
    cfg: ServerConfig,
    registry: EngineRegistry,
    metrics: Registry,
    cache: Mutex<LfuCache<Entry>>,
    state: Mutex<DispatchState>,
    work: Condvar,
    closing: AtomicBool,
    shutdown_once: AtomicBool,
    counters: Counters,
    workers: Mutex<Vec<JoinHandle<()>>>,
    connections: Mutex<Vec<JoinHandle<()>>>,
}

impl Inner {
    /// A recorder on the configured trace session — disabled (and
    /// free) when tracing is off.
    fn recorder(&self) -> Recorder {
        self.cfg
            .trace
            .as_ref()
            .map_or_else(Recorder::disabled, TraceSession::recorder)
    }
}

/// The solver service: prepared-solver cache + coalescing dispatcher +
/// as many transports as you attach.
///
/// Cloning the handle is cheap (an `Arc`); all clones drive the same
/// server. The server stops when [`shutdown`](Server::shutdown) is
/// called — directly, or by a wire [`Request::Shutdown`].
#[derive(Clone)]
pub struct Server {
    inner: Arc<Inner>,
}

impl Server {
    /// Starts a server: spawns `cfg.solver_workers` dispatcher threads
    /// and resolves engines against `registry`.
    pub fn new(cfg: ServerConfig, registry: EngineRegistry) -> Server {
        let metrics = Registry::new();
        let counters = Counters::new(&metrics);
        let inner = Arc::new(Inner {
            cache: Mutex::new(LfuCache::new(cfg.cache_capacity)),
            state: Mutex::new(DispatchState::default()),
            work: Condvar::new(),
            closing: AtomicBool::new(false),
            shutdown_once: AtomicBool::new(false),
            counters,
            workers: Mutex::new(Vec::new()),
            connections: Mutex::new(Vec::new()),
            metrics,
            registry,
            cfg,
        });
        let server = Server { inner };
        let mut workers = server.inner.workers.lock().unwrap();
        for i in 0..server.inner.cfg.solver_workers {
            let inner = Arc::clone(&server.inner);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("amc-serve-worker-{i}"))
                    .spawn(move || {
                        // One recorder (= one trace lane) per dispatcher
                        // thread, flushed when the worker exits.
                        let mut rec = inner.recorder();
                        worker_loop(&inner, &mut rec);
                    })
                    .expect("spawn solver worker"),
            );
        }
        drop(workers);
        server
    }

    /// [`Server::new`] against the built-in engine registry.
    pub fn with_builtin_engines(cfg: ServerConfig) -> Server {
        Server::new(cfg, EngineRegistry::builtin())
    }

    /// Serves one transport until the peer disconnects, a `Shutdown`
    /// request is handled, or the server is shut down. Blocking — run
    /// it on the connection's thread.
    ///
    /// # Errors
    ///
    /// Transport failures ([`ServeError::Io`]); a clean peer disconnect
    /// returns `Ok(())`.
    pub fn serve_transport(&self, mut transport: impl Transport) -> Result<()> {
        // One recorder (= one trace lane) per connection loop, flushed
        // when the connection ends.
        let mut rec = self.inner.recorder();
        loop {
            match transport.recv(POLL)? {
                Received::Closed => return Ok(()),
                Received::Idle => {
                    if self.inner.closing.load(Ordering::Acquire) {
                        return Ok(());
                    }
                }
                Received::Frame(payload) => {
                    let decode = rec.enter("serve.decode");
                    let decoded = Request::decode(&payload);
                    rec.exit_with(decode, &[("bytes", payload.len() as f64)]);
                    let response = match decoded {
                        Err(e) => Response::Error {
                            message: e.to_string(),
                        },
                        Ok(request) => self.handle(request, &mut rec),
                    };
                    let closing = matches!(response, Response::ShuttingDown);
                    let encode = rec.enter("serve.encode");
                    let frame = response.encode();
                    rec.exit(encode);
                    transport.send(&frame)?;
                    if closing {
                        return Ok(());
                    }
                }
            }
        }
    }

    /// Opens an in-process connection: spawns a thread serving the
    /// server end of a [`loopback_pair`] and returns the client end
    /// (wrap it in a [`Client`](crate::client::Client)).
    pub fn loopback(&self) -> LoopbackTransport {
        let (client_end, server_end) = loopback_pair();
        let server = self.clone();
        let handle = std::thread::Builder::new()
            .name("amc-serve-loopback".into())
            .spawn(move || {
                let _ = server.serve_transport(server_end);
            })
            .expect("spawn loopback connection");
        self.inner.connections.lock().unwrap().push(handle);
        client_end
    }

    /// Accepts TCP connections until shutdown, serving each on its own
    /// thread. Blocking — typically the main thread of a server
    /// process.
    ///
    /// # Errors
    ///
    /// Listener configuration failures; per-connection errors are
    /// contained to their threads.
    pub fn serve_tcp(&self, listener: TcpListener) -> Result<()> {
        listener.set_nonblocking(true)?;
        let mut conns: Vec<JoinHandle<()>> = Vec::new();
        loop {
            if self.inner.closing.load(Ordering::Acquire) {
                break;
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let server = self.clone();
                    conns.push(
                        std::thread::Builder::new()
                            .name("amc-serve-conn".into())
                            .spawn(move || {
                                if let Ok(transport) = TcpTransport::new(stream) {
                                    let _ = server.serve_transport(transport);
                                }
                            })
                            .expect("spawn connection thread"),
                    );
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL);
                }
                Err(e) => return Err(e.into()),
            }
        }
        for conn in conns {
            let _ = conn.join();
        }
        Ok(())
    }

    /// A point-in-time counter snapshot (same numbers as the wire
    /// `Stats` request).
    pub fn stats(&self) -> ServerStats {
        let cache = self.inner.cache.lock().unwrap();
        let c = cache.counters();
        ServerStats {
            hits: c.hits,
            misses: c.misses,
            evictions: c.evictions,
            insertions: c.insertions,
            entries: cache.len() as u64,
            capacity: cache.capacity() as u64,
            requests: self.inner.counters.requests.get(),
            solved_rhs: self.inner.counters.solved_rhs.get(),
            dispatch_batches: self.inner.counters.dispatch_batches.get(),
            coalesced_requests: self.inner.counters.coalesced_requests.get(),
            staleness_evictions: self.inner.counters.staleness_evictions.get(),
            degraded_served: self.inner.counters.degraded_served.get(),
        }
    }

    /// A point-in-time snapshot of the full metrics surface: every
    /// `serve.*` counter and latency histogram, with the cache counters
    /// mirrored in under `cache.*`. This is the queryable surface
    /// behind `repro serve --metrics`; [`Server::stats`] remains the
    /// frozen wire subset.
    pub fn metrics(&self) -> MetricsSnapshot {
        {
            let cache = self.inner.cache.lock().unwrap();
            let c = cache.counters();
            self.inner.metrics.counter("cache.hits").set(c.hits);
            self.inner.metrics.counter("cache.misses").set(c.misses);
            self.inner
                .metrics
                .counter("cache.evictions")
                .set(c.evictions);
            self.inner
                .metrics
                .counter("cache.insertions")
                .set(c.insertions);
            self.inner
                .metrics
                .gauge("cache.entries")
                .set(cache.len() as f64);
            self.inner
                .metrics
                .gauge("cache.capacity")
                .set(cache.capacity() as f64);
        }
        self.inner
            .metrics
            .gauge("serve.queued_rhs")
            .set(self.queued_rhs() as f64);
        self.inner.metrics.snapshot()
    }

    /// Stops the server: wakes and joins the solver workers, then fails
    /// every still-queued job with [`ServeError::Closed`] so blocked
    /// connections (and their clients) unblock. Idempotent; called
    /// automatically by a wire `Shutdown` request and on drop.
    pub fn shutdown(&self) {
        if self.inner.shutdown_once.swap(true, Ordering::AcqRel) {
            return;
        }
        {
            let mut st = self.inner.state.lock().unwrap();
            st.shutdown = true;
            self.inner.closing.store(true, Ordering::Release);
        }
        self.inner.work.notify_all();
        let workers: Vec<_> = self.inner.workers.lock().unwrap().drain(..).collect();
        for worker in workers {
            let _ = worker.join();
        }
        // Drain after the workers are gone: everything left is work
        // nobody will do. Replying unblocks connection loops stuck in
        // submit(), which in turn lets their clients return.
        let drained: Vec<Job> = {
            let mut st = self.inner.state.lock().unwrap();
            st.ready.clear();
            st.queued_rhs = 0;
            st.pending.drain().flat_map(|(_, jobs)| jobs).collect()
        };
        for job in drained {
            let _ = job.reply.send(Err(ServeError::Closed));
        }
    }

    /// Whether [`shutdown`](Server::shutdown) has begun.
    pub fn is_shutting_down(&self) -> bool {
        self.inner.closing.load(Ordering::Acquire)
    }

    /// Joins every connection thread this handle spawned (loopback
    /// connections register themselves; a thread never joins itself).
    /// Call after [`shutdown`](Server::shutdown) when the connection
    /// loops must have fully exited — e.g. so their trace lanes are
    /// flushed before a [`TraceSession::drain`]. Idempotent; also runs
    /// on the last handle's drop.
    pub fn join_connections(&self) {
        let current = std::thread::current().id();
        let connections: Vec<_> = self.inner.connections.lock().unwrap().drain(..).collect();
        for conn in connections {
            if conn.thread().id() != current {
                let _ = conn.join();
            }
        }
    }

    /// Right-hand sides currently queued (the backpressure gauge the
    /// `Busy` bound compares against). Exposed for tests and benches
    /// that need to observe saturation deterministically.
    pub fn queued_rhs(&self) -> usize {
        self.inner.state.lock().unwrap().queued_rhs
    }

    // -----------------------------------------------------------------
    // Request handling (one call per decoded request).
    // -----------------------------------------------------------------

    fn handle(&self, request: Request, rec: &mut Recorder) -> Response {
        self.inner.counters.requests.inc();
        match request {
            Request::Prepare {
                matrix,
                config,
                engine,
            } => self.handle_prepare(&matrix, &config, &engine, rec),
            Request::Solve {
                matrix,
                config,
                engine,
                rhs,
                accept_degraded,
            } => {
                match self.resolve_and_submit(
                    matrix,
                    &config,
                    &engine,
                    vec![rhs],
                    accept_degraded,
                    rec,
                ) {
                    Ok((mut xs, degraded)) => Response::Solved {
                        x: xs.pop().unwrap_or_default(),
                        degraded,
                    },
                    Err(e) => error_response(e),
                }
            }
            Request::SolveBatch {
                matrix,
                config,
                engine,
                batch,
                accept_degraded,
            } => {
                if batch.is_empty() {
                    return Response::Error {
                        message: "batch must contain at least one RHS".into(),
                    };
                }
                match self.resolve_and_submit(matrix, &config, &engine, batch, accept_degraded, rec)
                {
                    Ok((xs, degraded)) => Response::SolvedBatch { xs, degraded },
                    Err(e) => error_response(e),
                }
            }
            Request::Evict {
                fingerprint,
                config,
                engine,
            } => {
                let key = CacheKey::new(fingerprint, &config, &engine);
                let found = self.inner.cache.lock().unwrap().remove(&key).is_some();
                Response::Evicted { found }
            }
            Request::Stats => Response::Stats(self.stats()),
            Request::Shutdown => {
                self.shutdown();
                Response::ShuttingDown
            }
        }
    }

    fn handle_prepare(
        &self,
        matrix: &Matrix,
        config: &SolverConfig,
        engine: &EngineRef,
        rec: &mut Recorder,
    ) -> Response {
        let fingerprint = matrix.fingerprint();
        let key = CacheKey::new(fingerprint, config, engine);
        let lookup = rec.enter("serve.lookup");
        let hit = self.inner.cache.lock().unwrap().get(&key).is_some();
        rec.exit_with(lookup, &[("hit", f64::from(hit))]);
        if hit {
            return Response::Prepared {
                fingerprint,
                hit: true,
            };
        }
        // The miss was counted by the failed get. Prepare outside the
        // cache lock — programming is the expensive step, and a
        // concurrent equal Prepare would only produce a bit-identical
        // replica (deterministic engine build from the seed), so a
        // benign double-prepare beats serializing every connection.
        let prepare = rec.enter("serve.prepare");
        let built = build_entry(&self.inner, matrix, config, engine);
        rec.exit(prepare);
        match built {
            Ok(entry) => {
                self.inner.cache.lock().unwrap().insert(key, entry);
                Response::Prepared {
                    fingerprint,
                    hit: false,
                }
            }
            Err(message) => Response::Error { message },
        }
    }

    /// Resolves a [`MatrixRef`] to a cache key — preparing inline
    /// matrices on first sight — then queues the right-hand sides and
    /// blocks for the solutions.
    fn resolve_and_submit(
        &self,
        matrix: MatrixRef,
        config: &SolverConfig,
        engine: &EngineRef,
        rhs: Vec<Vec<f64>>,
        accept_degraded: bool,
        rec: &mut Recorder,
    ) -> std::result::Result<(Vec<Vec<f64>>, bool), ServeError> {
        let key = match matrix {
            MatrixRef::Cached(fingerprint) => {
                let key = CacheKey::new(fingerprint, config, engine);
                let lookup = rec.enter("serve.lookup");
                let hit = self.inner.cache.lock().unwrap().get(&key).is_some();
                rec.exit_with(lookup, &[("hit", f64::from(hit))]);
                if !hit {
                    return Err(ServeError::NotPrepared { fingerprint });
                }
                key
            }
            MatrixRef::Inline(m) => {
                let fingerprint = m.fingerprint();
                let key = CacheKey::new(fingerprint, config, engine);
                let lookup = rec.enter("serve.lookup");
                let hit = self.inner.cache.lock().unwrap().get(&key).is_some();
                rec.exit_with(lookup, &[("hit", f64::from(hit))]);
                if !hit {
                    let prepare = rec.enter("serve.prepare");
                    let built = build_entry(&self.inner, &m, config, engine);
                    rec.exit(prepare);
                    let entry = built.map_err(ServeError::Remote)?;
                    self.inner.cache.lock().unwrap().insert(key.clone(), entry);
                }
                key
            }
        };
        self.submit(key, rhs, accept_degraded, rec)
    }

    /// Queues jobs under `key` (respecting the backpressure bound) and
    /// blocks until a worker replies.
    fn submit(
        &self,
        key: CacheKey,
        rhs: Vec<Vec<f64>>,
        accept_degraded: bool,
        rec: &mut Recorder,
    ) -> std::result::Result<(Vec<Vec<f64>>, bool), ServeError> {
        let (tx, rx) = mpsc::channel();
        {
            let mut st = self.inner.state.lock().unwrap();
            if st.shutdown {
                return Err(ServeError::Closed);
            }
            let cost = rhs.len();
            if st.queued_rhs + cost > self.inner.cfg.queue_capacity {
                self.inner.counters.busy_rejections.inc();
                return Err(ServeError::Busy);
            }
            st.queued_rhs += cost;
            let queue = st.pending.entry(key.clone()).or_default();
            let first_for_key = queue.is_empty();
            queue.push(Job {
                rhs,
                accept_degraded,
                reply: tx,
                enqueued: Instant::now(),
            });
            // A key is enqueued exactly once: if jobs were already
            // pending it is in `ready` or `active`; otherwise it joins
            // `ready` unless a worker holds it active (that worker
            // re-enqueues on release).
            if first_for_key && !st.active.contains(&key) {
                st.ready.push_back(key);
                self.inner.work.notify_one();
            }
        }
        // The coalesce wait as the connection sees it: queue entry to
        // reply, dispatch included.
        let wait = rec.enter("serve.wait");
        let reply = rx.recv().map_err(|_| ServeError::Closed);
        rec.exit(wait);
        reply?
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Only the last handle tears the server down.
        if Arc::strong_count(&self.inner) != 1 {
            return;
        }
        self.shutdown();
        self.join_connections();
    }
}

/// Maps a submit-path error to its wire response.
fn error_response(e: ServeError) -> Response {
    match e {
        ServeError::Busy => Response::Busy,
        ServeError::NotPrepared { fingerprint } => Response::NotPrepared { fingerprint },
        ServeError::Closed => Response::ShuttingDown,
        other => Response::Error {
            message: other.to_string(),
        },
    }
}

/// Builds, prepares, and (when the server ages) wraps one cache entry.
/// A free function so both the request handlers and the dispatcher's
/// staleness re-prepare path can call it.
fn build_entry(
    inner: &Inner,
    matrix: &Matrix,
    config: &SolverConfig,
    engine: &EngineRef,
) -> std::result::Result<Entry, String> {
    let built = inner
        .registry
        .build(&engine.name, engine.seed)
        .map_err(|e| e.to_string())?;
    let mut solver = BlockAmcSolver::from_config(built, config.clone());
    let prepared = solver.prepare(matrix).map_err(|e| e.to_string())?;
    let replica = prepared.replicate(1).remove(0);
    match &inner.cfg.aging {
        None => Ok(Entry::Plain(replica)),
        Some(aging) => {
            // Fingerprint-keyed seed: distinct matrices age on
            // independent streams, yet a replay of the same requests
            // degrades identically.
            let seed = aging.seed ^ matrix.fingerprint();
            AgedSolver::new(replica, matrix.clone(), aging.model, seed)
                .map(|aged| Entry::Aged(Box::new(aged)))
                .map_err(|e| e.to_string())
        }
    }
}

/// One dispatcher thread: claim a key, coalesce its queue into a
/// batch, solve, reply, release.
fn worker_loop(inner: &Inner, rec: &mut Recorder) {
    loop {
        let (key, jobs) = {
            let mut st = inner.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if let Some(key) = st.ready.pop_front() {
                    let jobs = st.pending.remove(&key).unwrap_or_default();
                    st.queued_rhs -= jobs.iter().map(|j| j.rhs.len()).sum::<usize>();
                    st.active.insert(key.clone());
                    break (key, jobs);
                }
                st = inner.work.wait(st).unwrap();
            }
        };

        // The coalesce-wait histogram closes at claim time: how long
        // each job sat queued before a worker picked its key up.
        let claimed = Instant::now();
        for job in &jobs {
            let waited = claimed.duration_since(job.enqueued);
            inner.counters.wait_us.record(waited.as_micros() as u64);
        }
        let dispatch = rec.enter("serve.dispatch");
        let total_rhs: usize = jobs.iter().map(|j| j.rhs.len()).sum();

        // Clone the entry out under a short lock; everything else runs
        // unlocked so other keys' dispatches and all cache traffic keep
        // flowing. The dispatch-level fetch is deliberately peek (no
        // counters, no frequency bump): hits/misses/LFU heat are
        // counted once per *request* at resolve time, not re-counted
        // per batch. The key sits in `active`, so no other worker
        // touches this entry concurrently.
        let entry = inner.cache.lock().unwrap().peek(&key).cloned();

        match entry {
            None => {
                // Evicted between resolve and dispatch (tiny cache under
                // churn): the client re-prepares and retries.
                for job in &jobs {
                    let _ = job.reply.send(Err(ServeError::NotPrepared {
                        fingerprint: key.fingerprint,
                    }));
                }
            }
            Some(Entry::Plain(replica)) => {
                serve_batch(inner, replica, &jobs, false);
            }
            Some(Entry::Aged(aged)) => {
                dispatch_aged(inner, &key, &jobs, *aged);
            }
        }
        rec.exit_with(
            dispatch,
            &[("jobs", jobs.len() as f64), ("rhs", total_rhs as f64)],
        );

        let mut st = inner.state.lock().unwrap();
        st.active.remove(&key);
        // Jobs that arrived while the key was active: re-enqueue — they
        // form the next coalesced batch.
        if st.pending.get(&key).is_some_and(|q| !q.is_empty()) {
            st.ready.push_back(key);
            inner.work.notify_one();
        }
    }
}

/// Solves one coalesced batch on `replica` and replies to every job,
/// flagging the answers `degraded` as instructed.
fn serve_batch(inner: &Inner, mut replica: CachedSolver, jobs: &[Job], degraded: bool) {
    let batch: Vec<Vec<f64>> = jobs.iter().flat_map(|j| j.rhs.iter().cloned()).collect();
    inner.counters.dispatch_batches.inc();
    inner.counters.coalesced_requests.add(jobs.len() as u64);
    inner.counters.batch_rhs.record(batch.len() as u64);
    let started = Instant::now();
    let solved = replica.solve_batch_parallel(&batch, inner.cfg.batch_workers.max(1));
    inner
        .counters
        .dispatch_us
        .record(started.elapsed().as_micros() as u64);
    match solved {
        Ok(xs) => {
            inner.counters.solved_rhs.add(xs.len() as u64);
            if degraded {
                inner.counters.degraded_served.add(xs.len() as u64);
            }
            let mut xs = xs.into_iter();
            for job in jobs {
                let slice: Vec<Vec<f64>> = xs.by_ref().take(job.rhs.len()).collect();
                let _ = job.reply.send(Ok((slice, degraded)));
            }
        }
        Err(e) => {
            let message = e.to_string();
            for job in jobs {
                let _ = job.reply.send(Err(ServeError::Remote(message.clone())));
            }
        }
    }
}

/// The aged dispatch round: probe health, decide between serving as-is,
/// serving degraded (unanimous opt-in), or staleness-evicting and
/// re-preparing — then serve and advance the entry's clock one tick
/// (serve-then-age).
fn dispatch_aged(
    inner: &Inner,
    key: &CacheKey,
    jobs: &[Job],
    mut aged: AgedSolver<Box<dyn AmcEngine>>,
) {
    let aging = inner
        .cfg
        .aging
        .as_ref()
        .expect("aged cache entry on a server without aging config");
    let health = match aged.health() {
        Ok(h) => h,
        Err(e) => {
            let message = e.to_string();
            for job in jobs {
                let _ = job.reply.send(Err(ServeError::Remote(message.clone())));
            }
            return;
        }
    };
    let mut degraded = false;
    let mut reprepared = false;
    if health > aging.max_residual {
        if jobs.iter().all(|j| j.accept_degraded) {
            // Every coalesced request opted in: stale-but-fast.
            degraded = true;
        } else {
            // Staleness eviction: drop the degraded entry (not an LFU
            // capacity eviction — counted separately) and re-prepare
            // from the retained pristine matrix.
            inner.cache.lock().unwrap().remove(key);
            inner.counters.staleness_evictions.inc();
            let matrix = aged.matrix().clone();
            let config = aged.replica().config().clone();
            match build_entry(inner, &matrix, &config, &key.engine) {
                Ok(Entry::Aged(fresh)) => {
                    aged = *fresh;
                    reprepared = true;
                }
                Ok(Entry::Plain(_)) => unreachable!("aging config produces aged entries"),
                Err(message) => {
                    for job in jobs {
                        let _ = job.reply.send(Err(ServeError::Remote(message.clone())));
                    }
                    return;
                }
            }
        }
    }
    serve_batch(inner, aged.replica().clone(), jobs, degraded);
    // Serve-then-age: the batch above saw the state the previous round
    // left behind; only now does the clock tick.
    if aged.advance(1).is_err() {
        // Aging the arrays failed (engine programming error). Leave the
        // cache as-is: the entry keeps its pre-advance state and the
        // next round probes it again.
        return;
    }
    let mut cache = inner.cache.lock().unwrap();
    if reprepared {
        // The degraded entry was removed above; install its healthy
        // replacement (racing Evict requests at worst re-insert a fresh
        // solver, same as a prepare racing an evict).
        cache.insert(key.clone(), Entry::Aged(Box::new(aged)));
    } else if let Some(Entry::Aged(slot)) = cache.peek_mut(key) {
        // Write the advanced clock back into the existing slot — unless
        // an Evict raced us and the entry is gone, which stays gone.
        **slot = aged;
    }
}

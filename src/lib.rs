//! Workspace root crate for the BlockAMC reproduction.
//!
//! This crate exists to host the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`); the library functionality
//! lives in the workspace members:
//!
//! * [`amc_linalg`] — dense/sparse numerics,
//! * [`amc_device`] — RRAM device and crossbar models,
//! * [`amc_circuit`] — analog circuit simulation,
//! * [`blockamc`] — the BlockAMC solver itself,
//! * [`amc_arch`] — area/power/latency models.
//!
//! Run `cargo run --release -p amc-bench --bin repro -- all` to regenerate
//! every figure of the paper, or start with
//! `cargo run --release --example quickstart`.

pub use amc_arch;
pub use amc_circuit;
pub use amc_device;
pub use amc_linalg;
pub use blockamc;
